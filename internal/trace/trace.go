// Package trace generates synthetic cloud workload traces for the cluster
// experiments (§6.3). The paper drives its 100-node simulation with the
// Eucalyptus private-cloud traces ("VM arrivals, lifetimes, and VM sizes");
// those traces are not redistributable, so this package synthesizes
// workloads with the same documented statistical character: Poisson
// arrivals, heavy-tailed (log-normal) lifetimes, and a discrete instance-
// size mix dominated by small VMs.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"deflation/internal/restypes"
)

// Event is one VM request in a trace.
type Event struct {
	ID      string
	Arrival time.Duration
	// Lifetime is how long the VM runs once started; Departure = Arrival +
	// Lifetime when the VM is admitted immediately.
	Lifetime time.Duration
	Size     restypes.Vector
	// HighPriority marks the VM non-deflatable/non-preemptible.
	HighPriority bool
}

// SizeClass is one instance type in the mix.
type SizeClass struct {
	Size   restypes.Vector
	Weight float64
}

// DefaultSizeMix mirrors a small-instance-dominated private cloud: mostly
// 1- and 2-core VMs, a tail of 4- and 8-core ones (the Eucalyptus traces'
// documented shape).
func DefaultSizeMix() []SizeClass {
	return []SizeClass{
		{Size: restypes.V(1, 2048, 25, 25), Weight: 0.40},
		{Size: restypes.V(2, 4096, 50, 50), Weight: 0.30},
		{Size: restypes.V(4, 8192, 100, 100), Weight: 0.20},
		{Size: restypes.V(8, 16384, 200, 200), Weight: 0.10},
	}
}

// Config parameterizes trace generation.
type Config struct {
	Seed  int64
	Count int
	// MeanInterarrival is the exponential inter-arrival mean (default 30s).
	MeanInterarrival time.Duration
	// LifetimeMedian and LifetimeSigma parameterize the log-normal
	// lifetime distribution (defaults: 1h median, σ=1.2 — heavy-tailed,
	// most VMs short-lived with a long tail, as in the Eucalyptus traces).
	LifetimeMedian time.Duration
	LifetimeSigma  float64
	// HighPriorityFraction is the share of high-priority VMs (default 0.5,
	// the Fig. 8c setting: "50.0% VMs are low-priority").
	HighPriorityFraction float64
	// SizeMix defaults to DefaultSizeMix.
	SizeMix []SizeClass
}

func (c Config) withDefaults() Config {
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = 30 * time.Second
	}
	if c.LifetimeMedian == 0 {
		c.LifetimeMedian = time.Hour
	}
	if c.LifetimeSigma == 0 {
		c.LifetimeSigma = 1.2
	}
	if c.HighPriorityFraction == 0 {
		c.HighPriorityFraction = 0.5
	}
	if c.SizeMix == nil {
		c.SizeMix = DefaultSizeMix()
	}
	return c
}

// Generate produces a deterministic trace of Count events sorted by
// arrival time.
func Generate(cfg Config) ([]Event, error) {
	cfg = cfg.withDefaults()
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("trace: count must be positive, got %d", cfg.Count)
	}
	if cfg.HighPriorityFraction < 0 || cfg.HighPriorityFraction > 1 {
		return nil, fmt.Errorf("trace: high-priority fraction %g out of [0,1]", cfg.HighPriorityFraction)
	}
	var totalW float64
	for _, sc := range cfg.SizeMix {
		if sc.Weight < 0 || !sc.Size.Positive() {
			return nil, fmt.Errorf("trace: bad size class %+v", sc)
		}
		totalW += sc.Weight
	}
	if totalW == 0 {
		return nil, fmt.Errorf("trace: size mix has zero total weight")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	events := make([]Event, 0, cfg.Count)
	now := time.Duration(0)
	for i := 0; i < cfg.Count; i++ {
		now += time.Duration(rng.ExpFloat64() * float64(cfg.MeanInterarrival))
		life := time.Duration(float64(cfg.LifetimeMedian) * math.Exp(cfg.LifetimeSigma*rng.NormFloat64()))
		if life < time.Minute {
			life = time.Minute
		}
		events = append(events, Event{
			ID:           fmt.Sprintf("vm-%05d", i),
			Arrival:      now,
			Lifetime:     life,
			Size:         pickSize(rng, cfg.SizeMix, totalW),
			HighPriority: rng.Float64() < cfg.HighPriorityFraction,
		})
	}
	return events, nil
}

func pickSize(rng *rand.Rand, mix []SizeClass, totalW float64) restypes.Vector {
	x := rng.Float64() * totalW
	for _, sc := range mix {
		if x < sc.Weight {
			return sc.Size
		}
		x -= sc.Weight
	}
	return mix[len(mix)-1].Size
}

// Stats summarizes a trace for sanity checks and reports.
type Stats struct {
	Count          int
	HighPriority   int
	MeanLifetime   time.Duration
	MedianLifetime time.Duration
	TotalCPU       float64
	TotalMemMB     float64
}

// Summarize computes trace statistics.
func Summarize(events []Event) Stats {
	var s Stats
	s.Count = len(events)
	if s.Count == 0 {
		return s
	}
	lifetimes := make([]time.Duration, 0, len(events))
	var sum time.Duration
	for _, e := range events {
		if e.HighPriority {
			s.HighPriority++
		}
		lifetimes = append(lifetimes, e.Lifetime)
		sum += e.Lifetime
		s.TotalCPU += e.Size.CPU
		s.TotalMemMB += e.Size.MemoryMB
	}
	s.MeanLifetime = sum / time.Duration(s.Count)
	// Median via insertion into a copy (traces are small).
	for i := 1; i < len(lifetimes); i++ {
		for j := i; j > 0 && lifetimes[j] < lifetimes[j-1]; j-- {
			lifetimes[j], lifetimes[j-1] = lifetimes[j-1], lifetimes[j]
		}
	}
	s.MedianLifetime = lifetimes[len(lifetimes)/2]
	return s
}
