package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"deflation/internal/faults"
	"deflation/internal/hypervisor"
	"deflation/internal/migration"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// This file integrates live migration (internal/migration) into the cluster:
// the local controller learns to checkpoint, restore, and reserve migration
// link bandwidth; the manager learns migration-based reclamation policies
// (migrate low-priority VMs out of a high-priority placement's way instead
// of preempting them, optionally deflating them first so they move cheaply),
// a migration-based node drain, and a user-facing Migrate operation.

// Migration-specific errors.
var (
	// ErrNodeNotFound marks operations naming a server the manager does not
	// manage.
	ErrNodeNotFound = errors.New("cluster: node not found")
	// ErrMigrationFailed marks a migration that did not complete: the VM
	// keeps running on its source (rollback), and the error wraps the cause
	// (non-convergence, mid-copy fault, no destination capacity).
	ErrMigrationFailed = errors.New("cluster: migration failed")
)

// ReclaimPolicy selects how the manager frees room for a high-priority
// placement when no server is feasible without disruption. The zero value is
// the existing behavior (preempt), so unconfigured managers take exactly the
// pre-migration code path.
type ReclaimPolicy int

const (
	// ReclaimPreempt preempts low-priority VMs (the existing fallback).
	ReclaimPreempt ReclaimPolicy = iota
	// ReclaimMigrationOnly live-migrates low-priority VMs to other servers
	// to make room, preempting only when no migration target exists.
	ReclaimMigrationOnly
	// ReclaimDeflateThenMigrate first deflates each victim to its minimum
	// footprint, then migrates it — the deflated VM transfers fewer bytes,
	// dirties pages slower, and fits more destinations (Fuerst & Shenoy).
	ReclaimDeflateThenMigrate
)

// String names the policy.
func (p ReclaimPolicy) String() string {
	switch p {
	case ReclaimMigrationOnly:
		return "migration-only"
	case ReclaimDeflateThenMigrate:
		return "deflate-then-migrate"
	}
	return "preempt"
}

// VMCheckpoint is the transferable state of a VM plus the migration-relevant
// rates, produced by Checkpoint on the source and consumed by RestoreVM on
// the destination. The unexported app field carries the live application
// object for in-process hand-off; over the wire it is nil and the
// destination rebuilds the application from AppKind.
type VMCheckpoint struct {
	VM vm.Snapshot `json:"vm"`
	// AppKind names the registered application factory used to rebuild the
	// app when the live object is not available (wire restores).
	AppKind string `json:"app_kind,omitempty"`
	// TransferSetMB is the guest state pre-copy must move: the host-level
	// ever-touched footprint (deflation shrinks it — the deflate-then-
	// migrate advantage).
	TransferSetMB float64 `json:"transfer_set_mb"`
	// DirtyRateMBps is the guest's current dirty-page rate.
	DirtyRateMBps float64 `json:"dirty_rate_mbps"`

	app vm.Application
}

// Checkpoint implements Node: it captures the named VM's transferable state.
// The VM keeps running on the source — pre-copy migration only pauses it for
// the final stop-and-copy, which the manager models separately.
func (c *LocalController) Checkpoint(name string) (VMCheckpoint, error) {
	v, ok := c.vms[name]
	if !ok {
		return VMCheckpoint{}, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	env := v.Env()
	if env.OOMKilled {
		return VMCheckpoint{}, fmt.Errorf("%w: %q is OOM-killed, nothing to migrate", ErrMigrationFailed, name)
	}
	return VMCheckpoint{
		VM:            v.Snapshot(),
		TransferSetMB: env.EverTouchedMB,
		DirtyRateMBps: v.Instance().DirtyRateMBps(),
		app:           v.App(),
	}, nil
}

// RestoreVM implements Node: it materializes a checkpointed VM on this
// server. Admission is by the checkpoint's (possibly deflated) allocation,
// not the nominal size; see hypervisor.RestoreDomain.
func (c *LocalController) RestoreVM(cp VMCheckpoint) error {
	name := cp.VM.Domain.Name
	if _, ok := c.vms[name]; ok {
		return fmt.Errorf("%w: %q", ErrVMExists, name)
	}
	app := cp.app
	if app == nil {
		kind := cp.AppKind
		if kind == "" {
			if cp.VM.Priority == vm.HighPriority {
				kind = "inelastic"
			} else {
				kind = "elastic"
			}
		}
		f, err := AppKind(kind)
		if err != nil {
			return err
		}
		app = f(cp.VM.Domain.Size)
	}
	v, err := vm.RestoreOn(c.host, cp.VM, app)
	if err != nil {
		if errors.Is(err, hypervisor.ErrInsufficientCapacity) {
			return fmt.Errorf("%w: restoring %q: %v", ErrNoCapacity, name, err)
		}
		if errors.Is(err, hypervisor.ErrDomainExists) {
			return fmt.Errorf("%w: %q", ErrVMExists, name)
		}
		return err
	}
	c.vms[name] = v
	c.capacityChanged()
	return nil
}

// migrationStream is one active link-bandwidth reservation: the capacity
// reserved from the host plus the per-VM network throttles taken from
// co-located low-priority VMs when the NIC was saturated.
type migrationStream struct {
	granted   float64
	reserved  restypes.Vector
	throttled map[string]restypes.Vector
}

// maxStreamThrottle bounds how much of a co-located low-priority VM's
// network allocation a migration stream may steal (per-VM fraction).
const maxStreamThrottle = 0.5

// ReserveStream implements Node: it reserves up to rateMBps of network
// bandwidth for the named migration stream. Free NIC capacity is taken
// first; any shortfall is throttled from co-located low-priority VMs'
// network allocations (up to half each) — so a migrating node visibly
// degrades its network-bound neighbors for the duration of the copy. It
// returns the granted rate. Reserving an already-reserved stream returns the
// existing grant (idempotent, so wire retries are safe).
func (c *LocalController) ReserveStream(stream string, rateMBps float64) (float64, error) {
	if rateMBps <= 0 {
		return 0, fmt.Errorf("cluster: stream %q needs a positive rate, got %g", stream, rateMBps)
	}
	if s, ok := c.streams[stream]; ok {
		return s.granted, nil
	}
	if c.streams == nil {
		c.streams = make(map[string]*migrationStream)
	}
	s := &migrationStream{throttled: make(map[string]restypes.Vector)}
	granted := rateMBps
	if free := c.host.FreePhysical().NetMBps; granted > free {
		granted = free
		// Shortfall: throttle low-priority VMs' network proportionally.
		short := rateMBps - granted
		lows := c.lowVMs()
		var totalNet float64
		for _, v := range lows {
			totalNet += v.Allocation().NetMBps
		}
		if totalNet > 0 {
			frac := short / totalNet
			if frac > maxStreamThrottle {
				frac = maxStreamThrottle
			}
			for _, v := range lows {
				cut := v.Allocation().NetMBps * frac
				if cut <= 0 {
					continue
				}
				target := v.Allocation()
				target.NetMBps -= cut
				if _, err := v.Instance().SetAllocation(target); err != nil {
					continue
				}
				s.throttled[v.Name()] = restypes.Vector{NetMBps: cut}
				granted += cut
			}
		}
	}
	if granted <= 0 {
		c.restoreThrottles(s)
		return 0, fmt.Errorf("%w: no network bandwidth for stream %q", ErrNoCapacity, stream)
	}
	s.reserved = restypes.Vector{NetMBps: granted}
	if err := c.host.Reserve(s.reserved); err != nil {
		c.restoreThrottles(s)
		return 0, err
	}
	s.granted = granted
	c.streams[stream] = s
	c.capacityChanged()
	return granted, nil
}

// ReleaseStream implements Node: it releases a stream reservation and
// restores the throttled VMs' network allocations. Releasing an unknown
// stream is a no-op (idempotent).
func (c *LocalController) ReleaseStream(stream string) error {
	s, ok := c.streams[stream]
	if !ok {
		return nil
	}
	delete(c.streams, stream)
	c.host.Unreserve(s.reserved)
	c.restoreThrottles(s)
	c.capacityChanged()
	return nil
}

func (c *LocalController) restoreThrottles(s *migrationStream) {
	names := make([]string, 0, len(s.throttled))
	for name := range s.throttled {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v, ok := c.vms[name]
		if !ok {
			continue // released or preempted mid-stream
		}
		// SetAllocation clamps to the nominal size, so restoring is safe
		// even if the VM reinflated meanwhile; best-effort on error.
		_, _ = v.Instance().SetAllocation(v.Allocation().Add(s.throttled[name]))
	}
	s.throttled = make(map[string]restypes.Vector)
	c.capacityChanged()
}

// DeflateFully implements Node: it squeezes the named low-priority VM down
// to its minimum footprint via the cascade — the deflate-then-migrate
// preparation step. High-priority (or already fully deflated) VMs are a
// no-op. It returns the cascade latency.
func (c *LocalController) DeflateFully(name string) (time.Duration, error) {
	v, ok := c.vms[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	target := v.Deflatable()
	if v.Priority() == vm.HighPriority || target.IsZero() {
		return 0, nil
	}
	r, err := c.casc.Deflate(v, target)
	c.capacityChanged() // the cascade resized allocations even on partial failure
	if err != nil {
		return 0, fmt.Errorf("cluster: deflating %q: %w", name, err)
	}
	return r.TotalLatency, nil
}

// MigrationReport describes one completed (or attempted) migration.
type MigrationReport struct {
	VM   string `json:"vm"`
	From string `json:"from"`
	To   string `json:"to"`
	// RateMBps is the effective link rate the stream was granted.
	RateMBps float64          `json:"rate_mbps"`
	Result   migration.Result `json:"result"`
}

// MigrationStats aggregates the manager's migration activity.
type MigrationStats struct {
	Migrations          int           `json:"migrations"`
	Failures            int           `json:"failures"`
	ConvergenceFailures int           `json:"convergence_failures"`
	MigratedMB          float64       `json:"migrated_mb"`
	TotalDuration       time.Duration `json:"total_duration"`
	TotalDowntime       time.Duration `json:"total_downtime"`
}

// MigrationStats returns the manager's aggregate migration counters.
func (m *Manager) MigrationStats() MigrationStats {
	return MigrationStats{
		Migrations:          m.migrations,
		Failures:            m.migrationFailures,
		ConvergenceFailures: m.convergenceFailures,
		MigratedMB:          m.migratedMB,
		TotalDuration:       m.migrationTime,
		TotalDowntime:       m.migrationDowntime,
	}
}

// SetReclaimPolicy selects the manager's reclamation fallback for
// high-priority placements (default ReclaimPreempt, the existing behavior).
func (m *Manager) SetReclaimPolicy(p ReclaimPolicy) { m.reclaim = p }

// ReclaimPolicy returns the configured reclamation policy.
func (m *Manager) ReclaimPolicy() ReclaimPolicy { return m.reclaim }

// SetMigrationModel configures the migration performance model (the zero
// model uses defaults: a dedicated 10 GbE link, 300ms downtime target).
func (m *Manager) SetMigrationModel(mod migration.Model) { m.migModel = mod }

// SetMigrationScheduler installs the deferred-work scheduler migrations use
// to hold link-bandwidth reservations for the copy's duration (the
// simulation passes clock.After). With a nil scheduler reservations are
// released as soon as the migration is decided.
func (m *Manager) SetMigrationScheduler(sched func(d time.Duration, f func())) {
	m.migScheduler = sched
}

// SetMigrationFaults installs a fault injector whose MigrationFault stream
// decides mid-copy failures (nil disables injection).
func (m *Manager) SetMigrationFaults(inj *faults.Injector) { m.migFaults = inj }

// Migrate live-migrates a placed VM to the named destination server. On any
// failure the VM keeps running on its source (pre-copy rolls back cleanly).
func (m *Manager) Migrate(name, dest string) (MigrationReport, error) {
	di := m.serverIndex(dest)
	if di < 0 {
		return MigrationReport{}, fmt.Errorf("%w: %q", ErrNodeNotFound, dest)
	}
	rep, err := m.migrate(name, di)
	m.noteDeposed(err)
	return rep, err
}

func (m *Manager) serverIndex(name string) int {
	for i, s := range m.servers {
		if s.Name() == name {
			return i
		}
	}
	return -1
}

// migrate runs one pre-copy live migration of a placed VM to server dstIdx.
// Event ordering gives crash safety: the intent (evMigrateStart) journals
// before any state moves, and the placement only changes at evMigrateDone —
// so a manager crash at any intermediate point recovers with the VM
// journaled on its source, and reconciliation resolves the in-flight entry
// by asking the destination whether the copy completed.
func (m *Manager) migrate(name string, dstIdx int) (MigrationReport, error) {
	srcIdx, ok := m.placement[name]
	if !ok {
		return MigrationReport{}, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	if srcIdx == dstIdx {
		return MigrationReport{}, fmt.Errorf("%w: %q already runs on %q", ErrMigrationFailed, name, m.servers[dstIdx].Name())
	}
	if !m.alive(srcIdx) || !m.alive(dstIdx) {
		return MigrationReport{}, fmt.Errorf("%w: migrating %q", ErrNodeDown, name)
	}
	src, dst := m.servers[srcIdx], m.servers[dstIdx]
	rep := MigrationReport{VM: name, From: src.Name(), To: dst.Name()}

	cp, err := src.Checkpoint(name)
	if err != nil {
		return rep, fmt.Errorf("cluster: checkpointing %q: %w", name, err)
	}
	if cp.AppKind == "" {
		if spec, ok := m.specs[name]; ok && spec.AppKind != "" {
			cp.AppKind = spec.AppKind
		}
	}
	model := m.migModel.WithDefaults()

	// Journal the intent before anything moves.
	if m.inflight == nil {
		m.inflight = make(map[string]MigrationIntent)
	}
	m.inflight[name] = MigrationIntent{From: src.Name(), To: dst.Name()}
	m.record(Event{Kind: evMigrateStart, VM: name, Node: dst.Name(), From: src.Name()})

	stream := "migrate:" + name
	release := func() {
		_ = src.ReleaseStream(stream)
		_ = dst.ReleaseStream(stream)
	}
	fail := func(res migration.Result, cause error) (MigrationReport, error) {
		delete(m.inflight, name)
		m.migrationFailures++
		if m.tel != nil {
			m.tel.migrationFailures.Inc()
		}
		m.record(Event{Kind: evMigrateFail, VM: name, Node: dst.Name(), From: src.Name()})
		m.deferWork(res.Duration, release)
		rep.Result = res
		return rep, fmt.Errorf("%w: %q to %q: %v", ErrMigrationFailed, name, dst.Name(), cause)
	}

	srcRate, err := src.ReserveStream(stream, model.LinkMBps)
	if err != nil {
		return fail(migration.Result{}, fmt.Errorf("source link: %w", err))
	}
	// The destination must admit the VM itself after the copy, so the stream
	// may not consume the NIC headroom the VM's own allocation needs.
	dstWant := model.LinkMBps
	if headroom := dst.Free().NetMBps - cp.VM.Domain.Alloc.NetMBps; headroom < dstWant {
		dstWant = headroom
	}
	if dstWant <= 0 {
		return fail(migration.Result{}, fmt.Errorf("destination link: %w: NIC has no headroom beyond the VM's own allocation", ErrNoCapacity))
	}
	dstRate, err := dst.ReserveStream(stream, dstWant)
	if err != nil {
		return fail(migration.Result{}, fmt.Errorf("destination link: %w", err))
	}
	rep.RateMBps = minf64(srcRate, dstRate)

	res := model.Simulate(cp.TransferSetMB, cp.DirtyRateMBps, rep.RateMBps)
	if !res.Converged {
		m.convergenceFailures++
		if m.tel != nil {
			m.tel.convergenceFailures.Inc()
		}
		return fail(res, fmt.Errorf("pre-copy cannot converge: dirty %.0f MB/s over a %.0f MB/s link",
			cp.DirtyRateMBps, rep.RateMBps))
	}
	if m.migFaults != nil && m.migFaults.MigrationFault() {
		return fail(res, errors.New("injected mid-copy fault"))
	}

	// Switchover: materialize on the destination, then release the source.
	if err := dst.RestoreVM(cp); err != nil {
		return fail(res, fmt.Errorf("restore on destination: %w", err))
	}
	if err := src.Release(name); err != nil {
		// The copy is live on the destination; a failed source release
		// leaves at worst a stale copy that anti-entropy reconciliation
		// will find and release. Proceed with the switchover.
		_ = err
	}
	m.placement[name] = dstIdx
	delete(m.inflight, name)
	m.migrations++
	m.migratedMB += res.TransferredMB
	m.migrationTime += res.Duration
	m.migrationDowntime += res.Downtime
	m.record(Event{Kind: evMigrateDone, VM: name, Node: dst.Name(), From: src.Name()})
	if m.tel != nil {
		m.tel.migrations.Inc()
		m.tel.migrationSeconds.Observe(res.Duration.Seconds())
		m.tel.migrationDowntime.Observe(res.Downtime.Seconds())
		m.tel.migratedMB.Observe(res.TransferredMB)
	}
	// The stream occupies both NICs for the copy's duration.
	m.deferWork(res.Duration, release)
	rep.Result = res
	return rep, nil
}

// deferWork schedules f after d on the migration scheduler, or runs it
// immediately when no scheduler is installed (CLI-driven managers).
func (m *Manager) deferWork(d time.Duration, f func()) {
	if m.migScheduler != nil && d > 0 {
		m.migScheduler(d, f)
		return
	}
	f()
}

// Drain live-migrates every VM off the named server (planned maintenance —
// the migration-based alternative to crash evacuation). VMs with no
// feasible destination or whose migration fails stay behind and are
// reported in failed. Deflate-then-migrate policy applies if configured.
func (m *Manager) Drain(node string) (moved []MigrationReport, failed []string, err error) {
	idx := m.serverIndex(node)
	if idx < 0 {
		return nil, nil, fmt.Errorf("%w: %q", ErrNodeNotFound, node)
	}
	var names []string
	for name, i := range m.placement {
		if i == idx {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if m.reclaim == ReclaimDeflateThenMigrate {
			_, _ = m.servers[idx].DeflateFully(name)
		}
		footprint, kind := m.vmFootprint(idx, name)
		dst := m.bestMigrationTarget(footprint, kind, idx)
		if dst < 0 {
			failed = append(failed, name)
			continue
		}
		rep, err := m.migrate(name, dst)
		if err != nil {
			failed = append(failed, name)
			continue
		}
		moved = append(moved, rep)
	}
	return moved, failed, nil
}

// migrateFallback frees room for a high-priority placement by migrating
// low-priority VMs off the most-reclaimable server instead of preempting
// them. It returns the server index once the spec fits there, or -1 when
// migration cannot make room (the caller then falls back to preemption).
func (m *Manager) migrateFallback(spec LaunchSpec) int {
	cand := m.preemptFallback(spec) // the server where reclamation frees the most
	if cand < 0 {
		return -1
	}
	// Each iteration moves one victim away; bounded by the VMs on the node.
	for range [64]struct{}{} {
		if feasible(m.servers[cand], spec) {
			return cand
		}
		victim := m.pickMigrationVictim(cand)
		if victim == "" {
			return -1
		}
		if m.reclaim == ReclaimDeflateThenMigrate {
			// Shrink the victim first: fewer bytes to move, lower dirty
			// rate, and a smaller footprint that fits more destinations.
			_, _ = m.servers[cand].DeflateFully(victim)
		}
		footprint, kind := m.vmFootprint(cand, victim)
		dst := m.bestMigrationTarget(footprint, kind, cand)
		if dst < 0 {
			return -1
		}
		if _, err := m.migrate(victim, dst); err != nil {
			return -1
		}
	}
	return -1
}

// pickMigrationVictim selects the largest-allocation low-priority VM on
// server idx (mirroring the preemption victim order), by inventory ground
// truth; ties break by name for determinism.
func (m *Manager) pickMigrationVictim(idx int) string {
	inv, err := nodeInventory(m.servers[idx])
	if err != nil {
		return ""
	}
	sort.Slice(inv, func(a, b int) bool { return inv[a].Name < inv[b].Name })
	best, bestNorm := "", -1.0
	for _, vs := range inv {
		if vs.Priority == vm.HighPriority.String() {
			continue
		}
		if _, placed := m.placement[vs.Name]; !placed {
			continue // not ours to move (mid-reconciliation)
		}
		if n := vs.Allocation.Norm(); n > bestNorm {
			best, bestNorm = vs.Name, n
		}
	}
	return best
}

// vmFootprint returns the capacity a migrated VM needs on its destination —
// its current (possibly deflated) allocation per the node's ground truth,
// falling back to the spec's nominal size — plus the VM's substrate kind
// ("" when unknown), so the destination search can skip kind-incompatible
// nodes (a container checkpoint cannot restore as a hypervisor domain).
func (m *Manager) vmFootprint(idx int, name string) (restypes.Vector, string) {
	if inv, err := nodeInventory(m.servers[idx]); err == nil {
		for _, vs := range inv {
			if vs.Name == name {
				return vs.Allocation, vs.Substrate
			}
		}
	}
	return m.specs[name].Size, m.specs[name].Substrate
}

// bestMigrationTarget picks the best-fit destination for a footprint: the
// alive, substrate-compatible server (excluding the source) whose free
// capacity fits it with the highest cosine fitness. Migration admits by
// free capacity only — it never triggers recursive reclamation on the
// destination. Nodes whose substrate is unknown (remote agents predating
// the self-report) are not excluded; the destination's RestoreInstance is
// the authoritative kind check and the migration rolls back cleanly on
// mismatch.
func (m *Manager) bestMigrationTarget(footprint restypes.Vector, kind string, exclude int) int {
	if footprint.IsZero() {
		return -1
	}
	best, bestF := -1, -1.0
	for i, s := range m.servers {
		if i == exclude || !m.alive(i) || !substrateCompatible(s, kind) {
			continue
		}
		if !footprint.Fits(s.Free()) {
			continue
		}
		if f := footprint.CosineSimilarity(s.Free()); f > bestF {
			best, bestF = i, f
		}
	}
	return best
}

func minf64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
