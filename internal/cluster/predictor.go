package cluster

import (
	"fmt"
	"time"

	"deflation/internal/restypes"
)

// Forecaster predicts near-term high-priority resource demand from the
// observed arrival stream with an exponentially weighted moving average —
// the Resource-Central-style predictive resource management the paper
// names as future work (§7: "Incorporating predictive resource management
// [26] for deflatable VMs is part of our future work").
//
// Observations feed the arrival *rate* (resources per second); Forecast
// extrapolates it over a horizon. The forecaster is deliberately simple:
// its role is to move reclamation latency off the placement critical path,
// not to be a perfect predictor — over-prediction costs some low-priority
// performance, under-prediction falls back to reactive deflation.
type Forecaster struct {
	alpha float64
	rate  restypes.Vector // demand per second, EWMA-smoothed
	last  time.Duration
	init  bool
}

// NewForecaster builds a forecaster with smoothing factor alpha ∈ (0,1]
// (higher = more reactive).
func NewForecaster(alpha float64) (*Forecaster, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("cluster: forecaster alpha %g out of (0,1]", alpha)
	}
	return &Forecaster{alpha: alpha}, nil
}

// Observe records a high-priority arrival of the given size at virtual
// time now. Observations must be non-decreasing in time.
func (f *Forecaster) Observe(now time.Duration, size restypes.Vector) {
	if !f.init {
		f.init = true
		f.last = now
		return
	}
	dt := now - f.last
	if dt <= 0 {
		// Simultaneous arrivals: count them against a minimal interval so
		// the rate reflects the burst.
		dt = time.Second
	}
	f.last = now
	inst := size.Scale(1 / dt.Seconds())
	f.rate = f.rate.Scale(1 - f.alpha).Add(inst.Scale(f.alpha))
}

// Rate returns the smoothed demand per second.
func (f *Forecaster) Rate() restypes.Vector { return f.rate }

// Forecast returns the resources expected to be demanded within the
// horizon.
func (f *Forecaster) Forecast(horizon time.Duration) restypes.Vector {
	return f.rate.Scale(horizon.Seconds())
}

// proactiveReclaim pre-deflates low-priority VMs so that the cluster's
// free capacity covers the forecast demand, taking reclamation latency off
// the placement critical path. It spreads the deficit over the servers
// with the most deflatable resources and never preempts. It returns the
// number of servers it deflated.
func proactiveReclaim(servers []*LocalController, want restypes.Vector) int {
	var free restypes.Vector
	for _, s := range servers {
		free = free.Add(s.Free())
	}
	deficit := want.Sub(free).ClampNonNegative()
	if deficit.IsZero() {
		return 0
	}
	touched := 0
	for _, s := range servers {
		if deficit.IsZero() {
			break
		}
		avail := s.Deflatable()
		take := deficit.Min(avail)
		if take.IsZero() {
			continue
		}
		ensure := s.Free().Add(take)
		if _, err := s.Reclaim(ensure, false); err != nil {
			continue // best-effort: a busy server just contributes less
		}
		deficit = deficit.Sub(take).ClampNonNegative()
		touched++
	}
	return touched
}
