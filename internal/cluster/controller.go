// Package cluster implements deflation-based cluster management (§5): a
// centralized manager places VMs onto servers with deflation-aware
// bin-packing, and a per-server local deflation controller reclaims
// resources through proportional cascade deflation, preempting VMs only
// when they would be pushed below their minimum sizes.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"deflation/internal/cascade"
	"deflation/internal/guestos"
	"deflation/internal/restypes"
	"deflation/internal/substrate"
	"deflation/internal/vm"
)

// Errors returned by controller and manager operations.
var (
	ErrNoCapacity = errors.New("cluster: insufficient reclaimable capacity")
	ErrVMExists   = errors.New("cluster: VM already exists")
	ErrVMNotFound = errors.New("cluster: VM not found")
	// ErrNodeDown marks operations against a crashed (or unreachable)
	// server; the health monitor will evict and re-place its VMs.
	ErrNodeDown = errors.New("cluster: node is down")
)

// Mode selects the reclamation strategy — deflation (the paper's system) or
// the preemption-only baseline of today's clouds (Fig. 8c).
type Mode int

const (
	// ModeDeflation deflates low-priority VMs proportionally and preempts
	// only below minimum sizes.
	ModeDeflation Mode = iota
	// ModePreemptionOnly preempts low-priority VMs outright to free
	// resources — no deflation.
	ModePreemptionOnly
)

// String returns "deflation" or "preemption-only".
func (m Mode) String() string {
	if m == ModePreemptionOnly {
		return "preemption-only"
	}
	return "deflation"
}

// LaunchSpec describes a VM to start. Specs are JSON-serializable for the
// REST control plane; NewApp is a local-only shortcut, remote launches name
// a registered AppKind instead.
type LaunchSpec struct {
	Name     string          `json:"name"`
	Size     restypes.Vector `json:"size"`
	MinSize  restypes.Vector `json:"min_size"` // m_i; zero = fully deflatable
	Priority vm.Priority     `json:"priority"`
	// AppKind names a factory registered with RegisterAppKind.
	AppKind string `json:"app_kind,omitempty"`
	// NewApp builds the VM's application in-process; it takes precedence
	// over AppKind and does not serialize.
	NewApp func(size restypes.Vector) vm.Application `json:"-"`
	// GuestConfig optionally overrides the guest OS shape (CPUs/memory
	// default from Size).
	GuestConfig guestos.Config `json:"guest_config,omitempty"`
	// Warm marks the guest as long-running (all memory host-resident).
	Warm bool `json:"warm,omitempty"`
	// Substrate pins the VM to nodes of that substrate kind ("hypervisor"
	// or "container"); empty means any. The manager's placement filters by
	// it, and recovery journals it so a container-backed VM is re-placed
	// onto a container node.
	Substrate string `json:"substrate,omitempty"`
}

// LaunchReport describes the reclamation a launch triggered.
type LaunchReport struct {
	Reclaimed restypes.Vector `json:"reclaimed"`
	Deflated  []string        `json:"deflated,omitempty"`  // names of VMs deflated
	Preempted []string        `json:"preempted,omitempty"` // names of VMs preempted
	// ReclaimLatency is the end-to-end reclamation time: cascade deflations
	// run concurrently across the server's VMs (§5), so this is the
	// slowest VM's cascade, not the sum.
	ReclaimLatency time.Duration `json:"reclaim_latency,omitempty"`
}

// SplitPolicy selects how a reclamation demand is divided among a server's
// low-priority VMs. The paper's system uses the proportional policy (§5);
// the alternatives exist for the ablation benchmarks.
type SplitPolicy int

const (
	// SplitProportional deflates every low-priority VM proportionally to
	// its deflatable resources (the paper's x_i ∝ M_i − m_i).
	SplitProportional SplitPolicy = iota
	// SplitEqual asks every low-priority VM for an equal share.
	SplitEqual
	// SplitLargestFirst drains the most-deflatable VM first.
	SplitLargestFirst
)

// String names the policy.
func (p SplitPolicy) String() string {
	switch p {
	case SplitEqual:
		return "equal"
	case SplitLargestFirst:
		return "largest-first"
	}
	return "proportional"
}

// LocalController is the per-server deflation controller (Fig. 2): it
// tracks the server's VMs, executes proportional cascade deflation to make
// room, and reinflates VMs when resources free up.
type LocalController struct {
	host  substrate.Substrate
	casc  *cascade.Controller
	mode  Mode
	split SplitPolicy
	vms   map[string]*vm.VM

	// streams tracks active migration link-bandwidth reservations (see
	// ReserveStream in migrate.go). Nil until the first reservation.
	streams map[string]*migrationStream

	preemptions int

	// cache memoizes the derived capacity readings — each is an O(VMs) walk
	// over host/VM state, and the manager's placement path reads them for
	// every server on every launch. Any mutation (launch, release, deflate,
	// reinflate, preempt, stream reservation, crash) goes through
	// capacityChanged, which clears the cache and pings the watchers; the
	// manager's placement index subscribes to keep its per-node snapshots
	// fresh. Memoized values are bit-identical to recomputation: the same
	// code computes them, just once per change instead of once per read.
	cache    ctrlCache
	watchers []func()
}

// ctrlCache holds the memoized derived readings; have is a bitmask of which
// fields are current.
type ctrlCache struct {
	have       uint8
	vmList     []*vm.VM
	free       restypes.Vector
	avail      restypes.Vector
	ceil       restypes.Vector
	nominal    restypes.Vector
	overcommit float64
}

const (
	cacheVMs = 1 << iota
	cacheFree
	cacheAvail
	cacheCeil
	cacheNominal
	cacheOvercommit
)

// capacityChanged invalidates every memoized reading and notifies watchers.
// Mutating methods call it after changing VM membership or allocations —
// including mid-operation, before an interleaved read of Free() — so a
// cached value can never outlive the state it was derived from.
func (c *LocalController) capacityChanged() {
	c.cache.have = 0
	for _, w := range c.watchers {
		w()
	}
}

// WatchCapacity registers fn to run whenever this server's capacity vectors
// may have changed (VM launched/released/preempted, deflation, reinflation,
// migration stream reservations, crash/recovery). Used by the manager's
// placement index for push invalidation; fn must be O(1) and must not call
// back into the controller.
func (c *LocalController) WatchCapacity(fn func()) {
	c.watchers = append(c.watchers, fn)
}

// SetSplitPolicy changes how deflation demand is divided among VMs
// (default SplitProportional).
func (c *LocalController) SetSplitPolicy(p SplitPolicy) { c.split = p }

// NewLocalController wraps a substrate host — the simulated hypervisor
// (internal/hypervisor) or the container runtime (internal/simcg). The
// cascade levels configure which reclamation levels the server uses
// (AllLevels for the full system; the OS level is a per-VM no-op on
// substrates without a guest kernel).
func NewLocalController(host substrate.Substrate, levels cascade.Levels, mode Mode) *LocalController {
	return &LocalController{
		host: host,
		casc: cascade.New(levels),
		mode: mode,
		vms:  make(map[string]*vm.VM),
	}
}

// Host returns the underlying substrate host.
func (c *LocalController) Host() substrate.Substrate { return c.host }

// SubstrateKind reports which substrate this server runs, for placement
// filtering and operator state ("hypervisor" or "container").
func (c *LocalController) SubstrateKind() string { return string(c.host.Kind()) }

// Name implements Node.
func (c *LocalController) Name() string { return c.host.Name() }

// Has implements Node. In-process controllers are always reachable, so the
// error is always nil.
func (c *LocalController) Has(name string) (bool, error) {
	_, ok := c.vms[name]
	return ok, nil
}

// Ping implements Node; an in-process controller is always alive.
func (c *LocalController) Ping() error { return nil }

// Cascade returns the controller's cascade for configuration (deadlines,
// memory mechanism, fault hooks).
func (c *LocalController) Cascade() *cascade.Controller { return c.casc }

// FailAll models a crash-stop host failure: every VM dies immediately. The
// victims' names are returned (sorted) for the manager's failure
// accounting; unlike Release or preemption, nothing reinflates and the
// deaths do not count toward Preemptions(), which tracks capacity-driven
// preemptions only — failure-induced ones are the manager's Stats.
func (c *LocalController) FailAll() []string {
	victims := make([]string, 0, len(c.vms))
	for _, v := range c.VMs() {
		victims = append(victims, v.Name())
		v.Preempt()
	}
	c.vms = make(map[string]*vm.VM)
	c.capacityChanged()
	return victims
}

// Preemptions returns the number of VMs this controller has preempted.
func (c *LocalController) Preemptions() int { return c.preemptions }

// VMs returns the server's live VMs sorted by name. The slice is memoized
// and shared between calls until the VM set changes; callers must not
// mutate it.
func (c *LocalController) VMs() []*vm.VM {
	if c.cache.have&cacheVMs == 0 {
		// Always a fresh slice: a caller may still be iterating the
		// previously returned snapshot (old copying semantics).
		out := make([]*vm.VM, 0, len(c.vms))
		for _, v := range c.vms {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
		c.cache.vmList = out
		c.cache.have |= cacheVMs
	}
	return c.cache.vmList
}

// Inventory implements InventoryNode: the ground-truth list of VMs this
// server actually runs, in wire form, sorted by name. The manager's
// anti-entropy reconciliation compares it against the journaled view.
func (c *LocalController) Inventory() ([]VMState, error) {
	vms := c.VMs()
	out := make([]VMState, 0, len(vms))
	for _, v := range vms {
		st := VMState{
			Name:       v.Name(),
			Priority:   v.Priority().String(),
			Size:       v.Size(),
			Allocation: v.Allocation(),
			MinSize:    v.MinSize(),
			Throughput: v.Throughput(),
			App:        v.App().Name(),
			Substrate:  string(v.Substrate()),
		}
		// Balloon telemetry exists only behind the guest OS; a container
		// VM must never report any (the deflload invariant sweep asserts
		// this).
		if g := v.Guest(); g != nil {
			st.BalloonMB = g.BalloonMB()
		}
		out = append(out, st)
	}
	return out, nil
}

// VM looks up a VM by name.
func (c *LocalController) VM(name string) (*vm.VM, error) {
	v, ok := c.vms[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	return v, nil
}

// Free returns the server's unallocated physical capacity.
func (c *LocalController) Free() restypes.Vector {
	if c.cache.have&cacheFree == 0 {
		c.cache.free = c.host.FreePhysical()
		c.cache.have |= cacheFree
	}
	return c.cache.free
}

// Deflatable returns the total resources reclaimable from low-priority VMs
// (down to their minimums) without preemption. In preemption-only mode the
// reclaimable pool is instead the lows' entire allocations (they can be
// killed).
func (c *LocalController) Deflatable() restypes.Vector {
	var sum restypes.Vector
	for _, v := range c.VMs() {
		if v.Priority() == vm.HighPriority {
			continue
		}
		if c.mode == ModePreemptionOnly {
			sum = sum.Add(v.Allocation())
		} else {
			sum = sum.Add(v.Deflatable())
		}
	}
	return sum
}

// Availability returns the placement availability vector of §5 Eq. 4:
// A_j = Free_j + Deflatable_j.
func (c *LocalController) Availability() restypes.Vector {
	if c.cache.have&cacheAvail == 0 {
		c.cache.avail = c.Free().Add(c.Deflatable())
		c.cache.have |= cacheAvail
	}
	return c.cache.avail
}

// Mode returns the controller's reclamation mode.
func (c *LocalController) Mode() Mode { return c.mode }

// PreemptableCeiling returns the absolute maximum reclaimable capacity:
// free resources plus every low-priority VM's entire allocation (deflation
// to minimums, then preemption). High-priority placements may use this
// ceiling; the preempted VMs are the Fig. 8c casualties.
func (c *LocalController) PreemptableCeiling() restypes.Vector {
	if c.cache.have&cacheCeil == 0 {
		sum := c.Free()
		for _, v := range c.VMs() {
			if v.Priority() == vm.LowPriority {
				sum = sum.Add(v.Allocation())
			}
		}
		c.cache.ceil = sum
		c.cache.have |= cacheCeil
	}
	return c.cache.ceil
}

// NominalSize returns the sum of the server's VMs' nominal sizes — the
// numerator of the server-overcommitment metric (Fig. 8d).
func (c *LocalController) NominalSize() restypes.Vector {
	if c.cache.have&cacheNominal == 0 {
		var sum restypes.Vector
		for _, v := range c.VMs() {
			sum = sum.Add(v.Size())
		}
		c.cache.nominal = sum
		c.cache.have |= cacheNominal
	}
	return c.cache.nominal
}

// Overcommitment returns nominal load relative to capacity on the binding
// (maximum) of the CPU and memory dimensions.
func (c *LocalController) Overcommitment() float64 {
	if c.cache.have&cacheOvercommit == 0 {
		c.cache.overcommit = c.computeOvercommitment()
		c.cache.have |= cacheOvercommit
	}
	return c.cache.overcommit
}

func (c *LocalController) computeOvercommitment() float64 {
	nom, cap := c.NominalSize(), c.host.Capacity()
	if cap.CPU == 0 || cap.MemoryMB == 0 {
		return 0
	}
	cpu := nom.CPU / cap.CPU
	mem := nom.MemoryMB / cap.MemoryMB
	if cpu > mem {
		return cpu
	}
	return mem
}

// Launch implements Node: LaunchVM without the VM handle.
func (c *LocalController) Launch(spec LaunchSpec) (LaunchReport, error) {
	_, rep, err := c.LaunchVM(spec)
	return rep, err
}

// LaunchVM starts a VM on this server, reclaiming resources from
// low-priority VMs first if the free capacity does not cover the nominal
// size. It returns the VM handle for in-process callers.
func (c *LocalController) LaunchVM(spec LaunchSpec) (*vm.VM, LaunchReport, error) {
	var rep LaunchReport
	if _, ok := c.vms[spec.Name]; ok {
		return nil, rep, fmt.Errorf("%w: %q", ErrVMExists, spec.Name)
	}
	newApp, err := spec.ResolveApp()
	if err != nil {
		return nil, rep, err
	}
	if !spec.Size.Fits(c.Free()) {
		// Only high-priority placements may preempt low-priority VMs;
		// low-priority VMs squeeze in through deflation alone.
		allowPreempt := spec.Priority == vm.HighPriority
		rep, err = c.Reclaim(spec.Size, allowPreempt)
		if err != nil {
			return nil, rep, err
		}
	}
	inst, err := c.host.Spawn(spec.Name, spec.Size, spec.GuestConfig)
	if err != nil {
		return nil, rep, fmt.Errorf("cluster: launch %q: %w", spec.Name, err)
	}
	if spec.Warm {
		inst.MarkWarm()
	}
	v, err := vm.NewOn(inst, newApp(spec.Size), vm.Config{Priority: spec.Priority, MinSize: spec.MinSize})
	if err != nil {
		inst.Destroy()
		c.capacityChanged()
		return nil, rep, err
	}
	c.vms[spec.Name] = v
	c.capacityChanged()
	return v, rep, nil
}

// Reclaim drives the server's free capacity up to at least ensureFree: in
// deflation mode by proportionally deflating low-priority VMs ("deflates
// all low-priority VMs by an amount proportional to their size", §5),
// preempting only when deflation to the minimum sizes cannot cover the
// deficit; in preemption-only mode, by preempting outright.
func (c *LocalController) Reclaim(ensureFree restypes.Vector, allowPreempt bool) (LaunchReport, error) {
	var rep LaunchReport
	ensureFree = ensureFree.ClampNonNegative()
	limit := c.Availability()
	if allowPreempt {
		limit = c.PreemptableCeiling()
	}
	if !ensureFree.Fits(limit) {
		return rep, fmt.Errorf("%w: need %v, reclaimable %v", ErrNoCapacity, ensureFree, limit)
	}

	if c.mode == ModeDeflation {
		if err := c.proportionalDeflate(ensureFree, &rep); err != nil {
			return rep, err
		}
	}
	if ensureFree.Fits(c.Free()) {
		return rep, nil
	}
	if !allowPreempt {
		return rep, fmt.Errorf("%w: need %v free, have %v after deflation",
			ErrNoCapacity, ensureFree, c.Free())
	}
	// Preempt: the remaining deficit can only come from killing VMs (they
	// are already at their minimum sizes in deflation mode).
	if err := c.preemptUntil(ensureFree, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// proportionalDeflate divides the reclamation demand among low-priority
// VMs per the split policy and executes cascade deflation, stopping early
// once free capacity covers the requirement. Any residual demand (clamping,
// rounding) is drained largest-first.
func (c *LocalController) proportionalDeflate(ensureFree restypes.Vector, rep *LaunchReport) error {
	need := ensureFree.Sub(c.Free()).ClampNonNegative()
	lows := c.lowVMs()
	if len(lows) == 0 {
		return nil
	}

	switch c.split {
	case SplitEqual:
		share := need.Scale(1 / float64(len(lows)))
		for _, v := range lows {
			if ensureFree.Fits(c.Free()) {
				return nil
			}
			if err := c.deflateOne(v, share.Min(v.Deflatable()), rep); err != nil {
				return err
			}
		}
	case SplitLargestFirst:
		// handled by the drain pass below
	default: // SplitProportional
		pool := c.Deflatable()
		ratio := need.FractionOf(pool).Min(restypes.Uniform(1))
		for _, v := range lows {
			if ensureFree.Fits(c.Free()) {
				return nil
			}
			target := v.Deflatable().Mul(ratio).Min(v.Deflatable()).ClampNonNegative()
			if err := c.deflateOne(v, target, rep); err != nil {
				return err
			}
		}
	}

	// Drain pass (the whole algorithm for SplitLargestFirst): take the
	// remaining demand from the most-deflatable VMs first.
	sort.Slice(lows, func(i, j int) bool {
		return lows[i].Deflatable().Norm() > lows[j].Deflatable().Norm()
	})
	for _, v := range lows {
		remaining := ensureFree.Sub(c.Free()).ClampNonNegative()
		if remaining.IsZero() {
			return nil
		}
		if err := c.deflateOne(v, remaining.Min(v.Deflatable()), rep); err != nil {
			return err
		}
	}
	return nil
}

func (c *LocalController) lowVMs() []*vm.VM {
	var out []*vm.VM
	for _, v := range c.VMs() {
		if v.Priority() == vm.LowPriority {
			out = append(out, v)
		}
	}
	return out
}

func (c *LocalController) deflateOne(v *vm.VM, target restypes.Vector, rep *LaunchReport) error {
	target = target.ClampNonNegative()
	if target.IsZero() {
		return nil
	}
	r, err := c.casc.Deflate(v, target)
	c.capacityChanged() // the cascade resized allocations even on partial failure
	if err != nil {
		return fmt.Errorf("cluster: deflating %q: %w", v.Name(), err)
	}
	rep.Deflated = append(rep.Deflated, v.Name())
	rep.Reclaimed = rep.Reclaimed.Add(target.Sub(r.Shortfall).ClampNonNegative())
	// Per-VM cascades run concurrently (§5): report the slowest.
	if r.TotalLatency > rep.ReclaimLatency {
		rep.ReclaimLatency = r.TotalLatency
	}
	return nil
}

// preemptUntil preempts low-priority VMs (largest allocation first, to
// minimize the preemption count) until free capacity covers the
// requirement.
func (c *LocalController) preemptUntil(ensureFree restypes.Vector, rep *LaunchReport) error {
	for {
		if ensureFree.Fits(c.Free()) {
			return nil
		}
		victim := c.pickPreemptionVictim()
		if victim == nil {
			return fmt.Errorf("%w: need %v free, have %v, no preemptible VMs",
				ErrNoCapacity, ensureFree, c.Free())
		}
		rep.Reclaimed = rep.Reclaimed.Add(victim.Allocation())
		rep.Preempted = append(rep.Preempted, victim.Name())
		c.preemptInternal(victim)
	}
}

func (c *LocalController) pickPreemptionVictim() *vm.VM {
	var best *vm.VM
	for _, v := range c.VMs() {
		if v.Priority() == vm.HighPriority {
			continue
		}
		if best == nil || v.Allocation().Norm() > best.Allocation().Norm() {
			best = v
		}
	}
	return best
}

func (c *LocalController) preemptInternal(v *vm.VM) {
	v.Preempt()
	delete(c.vms, v.Name())
	c.preemptions++
	c.capacityChanged()
}

// Release shuts a VM down normally (its lifetime ended) and reinflates the
// survivors into the freed capacity (§5: "if some resources become
// available, then it reinflates VMs... proportionally").
func (c *LocalController) Release(name string) error {
	v, ok := c.vms[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	v.Preempt() // mechanically identical: destroy the domain
	delete(c.vms, name)
	c.capacityChanged()
	c.ReinflateAll()
	return nil
}

// ReinflateAll distributes free capacity to deflated VMs proportionally to
// their deficits (nominal size − current allocation), running the cascade
// in reverse.
func (c *LocalController) ReinflateAll() {
	var totalDeficit restypes.Vector
	for _, v := range c.VMs() {
		totalDeficit = totalDeficit.Add(v.Size().Sub(v.Allocation()).ClampNonNegative())
	}
	if totalDeficit.IsZero() {
		return
	}
	free := c.Free()
	ratio := free.FractionOf(totalDeficit).Min(restypes.Uniform(1))
	for _, v := range c.VMs() {
		deficit := v.Size().Sub(v.Allocation()).ClampNonNegative()
		amount := deficit.Mul(ratio)
		if amount.IsZero() {
			continue
		}
		// Reinflation is best-effort; failures leave the VM deflated.
		_, _ = c.casc.Reinflate(v, amount)
		c.capacityChanged()
	}
}
