package cluster

import (
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestQuickBackoffWithinFullJitterBounds is the satellite property test for
// the retry ladder: for arbitrary policies and retry indices, every drawn
// delay lies in (0, min(MaxDelay, BaseDelay<<retry)], and the rng-less path
// returns the raw capped ceiling.
func TestQuickBackoffWithinFullJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	prop := func(baseMS uint16, maxMS uint16, retry uint8) bool {
		p := RetryPolicy{
			BaseDelay: time.Duration(baseMS%1000+1) * time.Millisecond,
			MaxDelay:  time.Duration(maxMS%5000+1) * time.Millisecond,
		}.withDefaults()
		r := int(retry % 40) // large enough to exercise shift overflow
		ceiling := p.BaseDelay << uint(r)
		if ceiling > p.MaxDelay || ceiling <= 0 {
			ceiling = p.MaxDelay
		}
		d := p.backoff(r, rng)
		if d <= 0 || d > ceiling {
			t.Logf("policy %+v retry %d: delay %v outside (0, %v]", p, r, d, ceiling)
			return false
		}
		// Deterministic callers get the ceiling itself.
		if got := p.backoff(r, nil); got != ceiling {
			t.Logf("nil-rng backoff = %v, want ceiling %v", got, ceiling)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBackoffJitterActuallySpreads guards against a regression to ±band
// jitter: across many draws for one retry index the delays must cover the
// full (0, ceiling] window, not cluster near the ceiling.
func TestBackoffJitterActuallySpreads(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}.withDefaults()
	rng := rand.New(rand.NewSource(7))
	var below, above int
	for i := 0; i < 1000; i++ {
		d := p.backoff(0, rng) // ceiling = 100ms
		if d <= 50*time.Millisecond {
			below++
		} else {
			above++
		}
	}
	if below < 300 || above < 300 {
		t.Errorf("full jitter should cover the whole window: %d below midpoint, %d above", below, above)
	}
}

// TestStaleEpochNeverRetried pins the fencing interaction with the retry
// loop: a 412 (fenced-off epoch) is a verdict, not a flake — the client
// must surface ErrStaleEpoch after exactly one attempt. Retrying it would
// hammer a cluster that has already moved on to a newer leader.
func TestStaleEpochNeverRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "cluster: fenced: stale epoch", http.StatusPreconditionFailed)
	}))
	defer srv.Close()

	n := NewRemoteNodeNamed("fenced-node", srv.URL, RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		OpTimeout:   2 * time.Second,
	})
	_, err := n.State()
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("State() err = %v, want ErrStaleEpoch", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("412 retried: %d attempts, want exactly 1", got)
	}

	// Contrast: a 503 IS retried up to MaxAttempts.
	hits.Store(0)
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv2.Close()
	n2 := NewRemoteNodeNamed("flaky-node", srv2.URL, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		OpTimeout:   2 * time.Second,
	})
	if _, err := n2.State(); err == nil {
		t.Fatal("State() against a 503 server unexpectedly succeeded")
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("503 attempts = %d, want 3", got)
	}
}
