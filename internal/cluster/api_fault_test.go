package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// fastPolicy keeps failure-path tests quick; backoff sleeps are captured via
// the sleep seam rather than actually slept.
func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, OpTimeout: 2 * time.Second}
}

// recordSleeps swaps the node's sleep function for a recorder so backoff
// choices are observable and tests don't wait.
func recordSleeps(n *RemoteNode) *[]time.Duration {
	var mu sync.Mutex
	var sleeps []time.Duration
	n.sleep = func(d time.Duration) {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
	}
	return &sleeps
}

func TestStateRetriesOn5xxWithBackoff(t *testing.T) {
	_, ctrl := newControllerServer(t)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	base := api.Handler()
	var failing atomic.Bool
	var fails atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() && fails.Add(1) <= 2 {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		base.ServeHTTP(w, r)
	}))
	defer srv.Close()

	node, err := NewRemoteNodeWithPolicy(srv.URL, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	sleeps := recordSleeps(node)

	failing.Store(true)
	if _, err := node.State(); err != nil {
		t.Fatalf("State after two 5xxs: %v", err)
	}
	if got := node.Retries(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2 entries", *sleeps)
	}
	// Full jitter: each sleep is uniform over (0, ceiling] where the
	// ceilings double — 10ms then 20ms.
	if d := (*sleeps)[0]; d <= 0 || d > 10*time.Millisecond {
		t.Errorf("first backoff = %v, want in (0, 10ms]", d)
	}
	if d := (*sleeps)[1]; d <= 0 || d > 20*time.Millisecond {
		t.Errorf("second backoff = %v, want in (0, 20ms]", d)
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	_, ctrl := newControllerServer(t)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	base := api.Handler()
	var failing atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		base.ServeHTTP(w, r)
	}))
	defer srv.Close()

	node, err := NewRemoteNodeWithPolicy(srv.URL, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recordSleeps(node)

	failing.Store(true)
	if _, err := node.State(); err == nil {
		t.Fatal("State succeeded against a permanently failing server")
	}
	// MaxAttempts=4 → 3 retries beyond the first attempt.
	if got := node.Retries(); got != 3 {
		t.Errorf("retries = %d, want 3", got)
	}
}

func TestTimeoutIsRetriedAsTransportFailure(t *testing.T) {
	_, ctrl := newControllerServer(t)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	base := api.Handler()
	var hangOnce atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hangOnce.CompareAndSwap(true, false) {
			time.Sleep(300 * time.Millisecond) // beyond OpTimeout
		}
		base.ServeHTTP(w, r)
	}))
	defer srv.Close()

	policy := fastPolicy()
	policy.OpTimeout = 50 * time.Millisecond
	node, err := NewRemoteNodeWithPolicy(srv.URL, policy)
	if err != nil {
		t.Fatal(err)
	}
	recordSleeps(node)

	hangOnce.Store(true)
	if _, err := node.State(); err != nil {
		t.Fatalf("State after one hung attempt: %v", err)
	}
	if node.Retries() == 0 {
		t.Error("hung attempt was not retried")
	}
	if node.LastTransportErr() == nil {
		t.Error("timeout not recorded as a transport error")
	}
}

func TestReleaseSurvivesDroppedResponse(t *testing.T) {
	// The release applies server-side, but the connection drops before the
	// response reaches the client. The retry sees 404 — which, after a
	// transport failure, means the earlier attempt succeeded.
	_, ctrl := newControllerServer(t)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	base := api.Handler()
	var dropNext atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete && dropNext.CompareAndSwap(true, false) {
			rec := httptest.NewRecorder()
			base.ServeHTTP(rec, r)      // the release applies...
			panic(http.ErrAbortHandler) // ...but the response is lost
		}
		base.ServeHTTP(w, r)
	}))
	defer srv.Close()

	node, err := NewRemoteNodeWithPolicy(srv.URL, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recordSleeps(node)
	if _, err := node.Launch(wireSpec("a", vm.LowPriority)); err != nil {
		t.Fatal(err)
	}

	dropNext.Store(true)
	if err := node.Release("a"); err != nil {
		t.Fatalf("Release with dropped response: %v", err)
	}
	if ok, _ := ctrl.Has("a"); ok {
		t.Error("VM survived release")
	}
	// A genuinely missing VM still 404s when no transport failure preceded.
	if err := node.Release("ghost"); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("release of missing VM = %v, want ErrVMNotFound", err)
	}
}

func TestDeflateIdempotencyKeyPreventsDoubleApply(t *testing.T) {
	// First deflate applies but its response is dropped; the retry carries
	// the same Idempotency-Key, so the server replays the recorded outcome
	// instead of running the cascade again.
	_, ctrl := newControllerServer(t)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	base := api.Handler()
	var dropNext atomic.Bool
	var applied, replayed atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/deflate") {
			rec := httptest.NewRecorder()
			base.ServeHTTP(rec, r)
			if rec.Header().Get("Idempotency-Replayed") == "true" {
				replayed.Add(1)
			} else if rec.Code == http.StatusOK {
				applied.Add(1)
			}
			if dropNext.CompareAndSwap(true, false) {
				panic(http.ErrAbortHandler) // response lost after applying
			}
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
			return
		}
		base.ServeHTTP(w, r)
	}))
	defer srv.Close()

	node, err := NewRemoteNodeWithPolicy(srv.URL, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recordSleeps(node)
	if _, err := node.Launch(wireSpec("a", vm.LowPriority)); err != nil {
		t.Fatal(err)
	}

	dropNext.Store(true)
	target := restypes.V(2, 8192, 50, 50)
	resp, err := node.Deflate("a", target)
	if err != nil {
		t.Fatalf("Deflate with dropped response: %v", err)
	}
	if applied.Load() != 1 {
		t.Errorf("cascade applied %d times, want exactly 1", applied.Load())
	}
	if replayed.Load() != 1 {
		t.Errorf("replayed %d times, want exactly 1", replayed.Load())
	}
	v, err := ctrl.VM("a")
	if err != nil {
		t.Fatal(err)
	}
	if resp.NewAllocation != v.Allocation() {
		t.Errorf("replayed allocation %v != actual %v", resp.NewAllocation, v.Allocation())
	}
}

func TestLaunchNeverRetries(t *testing.T) {
	_, ctrl := newControllerServer(t)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	base := api.Handler()
	var launchAttempts atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/vms" {
			launchAttempts.Add(1)
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		base.ServeHTTP(w, r)
	}))
	defer srv.Close()

	node, err := NewRemoteNodeWithPolicy(srv.URL, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recordSleeps(node)
	if _, err := node.Launch(wireSpec("a", vm.LowPriority)); err == nil {
		t.Fatal("launch against failing server succeeded")
	}
	if got := launchAttempts.Load(); got != 1 {
		t.Errorf("launch attempted %d times, want exactly 1 (not idempotent)", got)
	}
	if node.Retries() != 0 {
		t.Errorf("launch consumed %d retries", node.Retries())
	}
}

func TestHasDistinguishesUnreachableFromMissing(t *testing.T) {
	srv, _ := newControllerServer(t)
	node, err := NewRemoteNodeWithPolicy(srv.URL, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recordSleeps(node)

	if ok, err := node.Has("nope"); ok || err != nil {
		t.Errorf("missing VM: Has = (%v, %v), want (false, nil)", ok, err)
	}
	srv.Close()
	if _, err := node.Has("nope"); err == nil {
		t.Error("unreachable server: Has returned nil error")
	}
	if err := node.Ping(); err == nil {
		t.Error("unreachable server: Ping returned nil error")
	}
}
