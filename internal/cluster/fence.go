package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"deflation/internal/telemetry"
)

// Leadership fencing. A manager's authority over the cluster is a lease
// identified by a monotonically increasing epoch. Every WAL record and every
// manager→controller RPC carries the writer's epoch; controllers remember
// the highest epoch they have seen and reject mutating commands from lower
// ones. This is what makes failover safe under partition: a standby that
// takes over bumps the epoch, and the old leader — still running on the far
// side of a partition, convinced it owns the cluster — finds every deflate,
// launch, release, and migration it issues refused the moment the network
// heals. Epoch 0 is the unfenced legacy mode (no HA configured) and is
// always accepted.

// ErrStaleEpoch rejects a command from a leader whose fencing epoch is
// older than one the controller has already obeyed — or tied with it under
// a different leader identity (a split-brain tie).
var ErrStaleEpoch = errors.New("cluster: stale leadership epoch")

// epochHeader carries the manager's fencing epoch on every RPC;
// leaderHeader carries its identity. Together they are the fencing token:
// epochs order terms, and the identity breaks same-epoch ties so two
// managers that each self-allocated the same epoch (a crashed leader's
// restart racing its standby's promotion) can never both command a node.
const (
	epochHeader  = "X-Deflation-Epoch"
	leaderHeader = "X-Deflation-Leader"
)

// EpochGuard tracks the highest leadership epoch a controller has obeyed —
// and which leader holds it — and fences lower or tied-but-foreign ones.
// Safe for concurrent use.
type EpochGuard struct {
	mu      sync.Mutex
	epoch   uint64
	leader  string
	assert  time.Time // when the current epoch was last asserted
	staleN  uint64
	highest uint64
}

// Check admits a command stamped with a fencing token: epoch 0 (unfenced
// legacy manager) is always admitted; a higher epoch takes leadership and
// raises the bar; an equal epoch is admitted only from the leader that
// already holds it — an equal epoch under a different identity is a
// split-brain tie (two managers each self-allocated the same term) and is
// rejected, so at most one of them can ever command this node. Returns
// ErrStaleEpoch for a command from a deposed or tied-out leader.
func (g *EpochGuard) Check(epoch uint64, leader string) error {
	if epoch == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if epoch < g.epoch {
		g.staleN++
		return fmt.Errorf("%w: epoch %d < fenced epoch %d", ErrStaleEpoch, epoch, g.epoch)
	}
	if epoch == g.epoch && leader != g.leader {
		g.staleN++
		return fmt.Errorf("%w: epoch %d already held by a different leader", ErrStaleEpoch, epoch)
	}
	g.epoch = epoch
	g.leader = leader
	g.assert = time.Now()
	if epoch > g.highest {
		g.highest = epoch
	}
	return nil
}

// Current returns the highest epoch admitted so far.
func (g *EpochGuard) Current() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Assertion returns the highest admitted epoch and how long ago a command
// last asserted it. A standby corroborating a leader's death reads this
// through the controller's healthz: a recently-asserted epoch means the
// leader is alive on some network path even if the standby cannot reach it
// directly, and promotion must hold.
func (g *EpochGuard) Assertion() (epoch uint64, age time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.epoch == 0 || g.assert.IsZero() {
		return g.epoch, 0
	}
	return g.epoch, time.Since(g.assert)
}

// StaleRejections returns how many commands the guard has fenced off.
func (g *EpochGuard) StaleRejections() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.staleN
}

// fencedNode wraps an in-process Node with epoch fencing, standing in for
// what RemoteNode + ControllerAPI enforce over HTTP so simulations can run
// dual-leader windows without a network. The guard is shared by every
// manager's wrapper of the same underlying node (it *is* the node's memory
// of who leads); the epoch is per-wrapper, set by the owning manager via
// SetEpoch — exactly how each manager's RemoteNode stamps its own header.
type fencedNode struct {
	Node
	guard *EpochGuard

	mu     sync.Mutex
	epoch  uint64
	leader string
}

// newFencedNode wraps n for one manager; guard must be shared across all
// wrappers of the same physical node.
func newFencedNode(n Node, guard *EpochGuard) *fencedNode {
	return &fencedNode{Node: n, guard: guard}
}

// SetEpoch is the manager's epoch-propagation hook (the same interface
// RemoteNode implements).
func (f *fencedNode) SetEpoch(epoch uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epoch = epoch
}

// SetLeaderID is the manager's identity-propagation hook (the same
// interface RemoteNode implements); the identity breaks same-epoch ties.
func (f *fencedNode) SetLeaderID(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.leader = id
}

// FencedEpoch reports the highest epoch this node's guard has obeyed — the
// in-process analogue of probing a remote controller's healthz. A manager
// assuming leadership reads the cluster-wide maximum through this so its
// new term lands strictly past every epoch any node has ever seen, not
// just past its own journal's.
func (f *fencedNode) FencedEpoch() (uint64, error) {
	return f.guard.Current(), nil
}

func (f *fencedNode) check() error {
	f.mu.Lock()
	e, id := f.epoch, f.leader
	f.mu.Unlock()
	return f.guard.Check(e, id)
}

// Mutating operations are fenced; reads pass through (a stale leader
// observing state is harmless — acting on it is not). Ping is the
// exception among reads: it doubles as the epoch-assertion beacon — a new
// leader's first probe raises every guard, fencing the old leader before
// this term issues its first real command, and a deposed leader's probes
// fail so its failure detector sees the cluster gone rather than healthy.

func (f *fencedNode) Ping() error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Node.Ping()
}

func (f *fencedNode) Launch(spec LaunchSpec) (LaunchReport, error) {
	if err := f.check(); err != nil {
		return LaunchReport{}, err
	}
	return f.Node.Launch(spec)
}

func (f *fencedNode) Release(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Node.Release(name)
}

func (f *fencedNode) RestoreVM(cp VMCheckpoint) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Node.RestoreVM(cp)
}

func (f *fencedNode) ReserveStream(stream string, rateMBps float64) (float64, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.Node.ReserveStream(stream, rateMBps)
}

func (f *fencedNode) ReleaseStream(stream string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.Node.ReleaseStream(stream)
}

func (f *fencedNode) DeflateFully(name string) (time.Duration, error) {
	if err := f.check(); err != nil {
		return 0, err
	}
	return f.Node.DeflateFully(name)
}

// Capability pass-throughs: the embedded field is the Node interface, so
// optional capabilities (inventory for anti-entropy, telemetry propagation)
// would not promote — forward the probes explicitly.

func (f *fencedNode) Inventory() ([]VMState, error) {
	return nodeInventory(f.Node)
}

func (f *fencedNode) SetTelemetry(sink *telemetry.Sink) {
	if ts, ok := f.Node.(interface{ SetTelemetry(*telemetry.Sink) }); ok {
		ts.SetTelemetry(sink)
	}
}

var _ Node = (*fencedNode)(nil)

// fenceAll asserts the manager's epoch on every node by pinging it — the
// takeover's fencing sweep. Ping carries the epoch, so each reachable node's
// guard is raised before this term issues its first command; errors are
// ignored (an unreachable node is fenced when the failure detector first
// probes it after rejoin, and until then it can't obey anyone).
func (m *Manager) fenceAll() {
	for _, s := range m.servers {
		s.Ping()
	}
}
