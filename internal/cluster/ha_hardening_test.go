package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"deflation/internal/journal"
	"deflation/internal/vm"
)

// The dual-leadership race the identity tie-break exists for: a crashed
// leader restarts and self-allocates epoch N+1 from its journal while the
// standby, promoted meanwhile, also holds N+1. Promotion must land strictly
// past whatever the controllers already obey, not tie with it.
func TestPromoteStandbyBumpsPastClusterFencedEpoch(t *testing.T) {
	ctrl := newServer(t, ModeDeflation)
	guard := &EpochGuard{}
	// The restarted old leader already asserted epoch 5 on the controller.
	if err := guard.Check(5, "restarted-leader"); err != nil {
		t.Fatal(err)
	}
	node := newFencedNode(ctrl, guard)

	// The standby's replica only ever saw epoch 1; a journal-local bump
	// would promote to 2 and be fenced — or worse, tie.
	st := NewWALState()
	st.Epoch = 1
	m, _, err := PromoteStandby(DurabilityConfig{Dir: t.TempDir(), LeaderID: "standby"},
		st, []Node{node}, BestFit, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Journal().Close()
	if m.Epoch() != 6 {
		t.Fatalf("promoted epoch = %d, want 6 (past the cluster-fenced 5)", m.Epoch())
	}
	if m.Identity() != "standby" {
		t.Fatalf("identity = %q", m.Identity())
	}
	// The promotion's fencing sweep asserted the new term, so the restarted
	// leader is refused.
	if err := guard.Check(5, "restarted-leader"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("old leader still admitted after promotion: %v", err)
	}
}

func TestBecomeLeaderBumpsPastClusterFencedEpoch(t *testing.T) {
	ctrl := newServer(t, ModeDeflation)
	guard := &EpochGuard{}
	if err := guard.Check(7, "other"); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager([]Node{newFencedNode(ctrl, guard)}, BestFit, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.BecomeLeader(); got != 8 {
		t.Fatalf("BecomeLeader = %d, want 8 (past the cluster-fenced 7)", got)
	}
}

func TestBecomeLeaderQueriesFencedEpochOverHTTP(t *testing.T) {
	srv, _ := newControllerServer(t)
	rival, err := NewRemoteNode(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rival.SetEpoch(4)
	rival.SetLeaderID("rival")
	if err := rival.Ping(); err != nil {
		t.Fatal(err)
	}

	node, err := NewRemoteNode(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if e, err := node.FencedEpoch(); err != nil || e != 4 {
		t.Fatalf("FencedEpoch over HTTP = %d, %v; want 4", e, err)
	}
	m, err := NewManager([]Node{node}, BestFit, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetIdentity("m2")
	if got := m.BecomeLeader(); got != 5 {
		t.Fatalf("BecomeLeader over HTTP = %d, want 5", got)
	}
	m.fenceAll() // assert the new term, as every takeover path does
	if err := rival.Ping(); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("rival still admitted at epoch 4: %v", err)
	}
}

// A poisoned WAL must surface into the command path: once the journal
// fail-stops, acking a launch would promise durability nothing backs.
func TestManagerAPIRefusesCommandsAfterWALPoison(t *testing.T) {
	var fail atomic.Bool
	injected := errors.New("injected disk error")
	j, err := journal.Open(t.TempDir(), journal.Options{
		SyncEvery: 1,
		FailOp: func(op string) error {
			if fail.Load() && op == "append" {
				return injected
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mgr := newCluster(t, 2, BestFit)
	mgr.AttachJournal(j, 1<<30)
	api, err := NewManagerAPI(mgr)
	if err != nil {
		t.Fatal(err)
	}

	post := func(spec LaunchSpec) *httptest.ResponseRecorder {
		body, _ := json.Marshal(spec)
		req := httptest.NewRequest(http.MethodPost, "/v1/vms", strings.NewReader(string(body)))
		w := httptest.NewRecorder()
		api.Handler().ServeHTTP(w, req)
		return w
	}

	if w := post(wireSpec("a", vm.LowPriority)); w.Code != http.StatusCreated {
		t.Fatalf("healthy launch = %d: %s", w.Code, w.Body)
	}

	// The command that poisons the journal applies in memory but must NOT be
	// acked: its durable record was dropped.
	fail.Store(true)
	if w := post(wireSpec("b", vm.LowPriority)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("poisoning launch acked with %d: %s", w.Code, w.Body)
	}
	// Every later command is refused up front — even after the fault clears,
	// the journal stays fail-stopped.
	fail.Store(false)
	if w := post(wireSpec("c", vm.LowPriority)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-poison launch = %d, want 503: %s", w.Code, w.Body)
	}
	req := httptest.NewRequest(http.MethodDelete, "/v1/vms/a", nil)
	w := httptest.NewRecorder()
	api.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-poison release = %d, want 503: %s", w.Code, w.Body)
	}
	// Reads keep serving: operators still need to see the state.
	req = httptest.NewRequest(http.MethodGet, "/v1/state", nil)
	w = httptest.NewRecorder()
	api.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("post-poison state read = %d", w.Code)
	}
}

// A deposed leader must stand down, not run forever as a zombie: the first
// ErrStaleEpoch from any node latches Deposed, fires the stand-down callback
// once, and flips the API to 503.
func TestDeposedManagerStandsDown(t *testing.T) {
	ctrl := newServer(t, ModeDeflation)
	guard := &EpochGuard{}
	m, err := NewManager([]Node{newFencedNode(ctrl, guard)}, BestFit, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetIdentity("old")
	m.SetEpoch(1)
	var standDowns atomic.Int32
	m.SetOnDeposed(func() { standDowns.Add(1) })
	if _, _, err := m.Launch(wireSpec("a", vm.LowPriority)); err != nil {
		t.Fatal(err)
	}

	// A newer leader fences the node behind this manager's back.
	usurper := newFencedNode(ctrl, guard)
	usurper.SetEpoch(2)
	usurper.SetLeaderID("new")
	if err := usurper.Ping(); err != nil {
		t.Fatal(err)
	}

	if m.Deposed() {
		t.Fatal("deposed before observing any rejection")
	}
	// The next heartbeat observes the stale-epoch refusal and latches.
	m.ProbeHealth()
	if !m.Deposed() {
		t.Fatal("stale-epoch rejection did not latch Deposed")
	}
	if got := standDowns.Load(); got != 1 {
		t.Fatalf("stand-down callback fired %d times, want 1", got)
	}
	// Latched once: further refusals don't re-fire the callback.
	m.ProbeHealth()
	if got := standDowns.Load(); got != 1 {
		t.Fatalf("callback re-fired: %d", got)
	}

	api, err := NewManagerAPI(m)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(wireSpec("b", vm.LowPriority))
	req := httptest.NewRequest(http.MethodPost, "/v1/vms", strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	api.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("deposed manager acked a launch: %d %s", w.Code, w.Body)
	}
	// The healthy VM placed under the old term is untouched by standing down.
	if ok, _ := ctrl.Has("a"); !ok {
		t.Error("standing down disturbed a healthy VM")
	}
}

// A follower must refuse a WAL stream that moves backwards: a leader
// recreated on a fresh state directory restarts its sequence numbers, and
// Apply's idempotency guard would silently no-op every record while the
// replica diverged at "lag 0".
func TestFollowerRejectsRegressedLeaderStream(t *testing.T) {
	batches := make(chan journal.Batch, 3)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(<-batches)
	}))
	defer srv.Close()
	f, err := NewFollower(FollowerConfig{Leader: srv.URL, DeadAfter: 3})
	if err != nil {
		t.Fatal(err)
	}

	batches <- journal.Batch{Seq: 5, Epoch: 2}
	if err := f.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// Sequence regression: the "leader" answers from before seq 5.
	batches <- journal.Batch{Seq: 3, Epoch: 2}
	if err := f.PollOnce(); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("seq regression accepted: %v", err)
	}
	// Epoch regression: an older term's journal.
	batches <- journal.Batch{Seq: 6, Epoch: 1}
	if err := f.PollOnce(); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("epoch regression accepted: %v", err)
	}
	st := f.Status()
	if st.ConsecutiveMisses != 2 {
		t.Errorf("regressions counted %d misses, want 2", st.ConsecutiveMisses)
	}
	if st.LeaderSeq != 5 || st.Epoch != 2 {
		t.Errorf("regression moved the replica's position: %+v", st)
	}
}

// An asymmetric partition — standby cut off from the leader while both still
// reach the controllers — must not trigger failover: the controllers have
// seen the leader's epoch asserted recently, so promotion holds.
func TestFollowerCorroborationHoldsPromotion(t *testing.T) {
	ctrlSrv, _ := newControllerServer(t)
	leader, err := NewRemoteNode(ctrlSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	leader.SetEpoch(3)
	leader.SetLeaderID("leader")
	if err := leader.Ping(); err != nil { // asserts epoch 3 on the controller
		t.Fatal(err)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // the standby cannot reach the leader at all

	newF := func(controllers []string, window time.Duration) *Follower {
		f, err := NewFollower(FollowerConfig{
			Leader: dead.URL, DeadAfter: 1,
			Controllers: controllers, CorroborationWindow: window,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.epoch = 3 // replicated before the partition
		return f
	}

	// The controller vouches for the leader: hold.
	if f := newF([]string{ctrlSrv.URL}, 30*time.Second); !f.leaderCorroborated() {
		t.Error("promotion not held despite a controller corroborating the leader")
	}
	// The assertion is too old for the window: promote.
	time.Sleep(5 * time.Millisecond)
	if f := newF([]string{ctrlSrv.URL}, time.Nanosecond); f.leaderCorroborated() {
		t.Error("a stale assertion held the promotion")
	}
	// A controller that never saw the leader's epoch: promote.
	freshSrv, _ := newControllerServer(t)
	if f := newF([]string{freshSrv.URL}, 30*time.Second); f.leaderCorroborated() {
		t.Error("an unasserted controller held the promotion")
	}
	// No controller reachable: the standby is the isolated one — hold.
	deadCtrl := httptest.NewServer(http.NotFoundHandler())
	deadCtrl.Close()
	if f := newF([]string{deadCtrl.URL}, 30*time.Second); !f.leaderCorroborated() {
		t.Error("a fully isolated standby did not hold its promotion")
	}
	// No corroboration configured: lease expiry alone decides.
	if f := newF(nil, 0); f.leaderCorroborated() {
		t.Error("corroboration engaged with no controllers configured")
	}

	// End to end through Run: the held promotion is counted, not taken.
	f := newF([]string{ctrlSrv.URL}, 30*time.Second)
	f.cfg.PollInterval = 5 * time.Millisecond
	done := make(chan bool, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		defer cancel()
		done <- f.Run(ctx)
	}()
	if promoted := <-done; promoted {
		t.Fatal("Run promoted despite controller corroboration")
	}
	if st := f.Status(); st.PromotionsHeld == 0 {
		t.Errorf("held promotions not counted: %+v", st)
	}
}
