package cluster

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// FuzzQuantile fuzzes the sweep statistics helpers quantile and mean:
// arbitrary (even out-of-range) q and arbitrary finite data must never
// panic, never index out of bounds, and never turn NaN-free input into
// NaN output. The data slice is decoded 8 bytes per float64 from the
// fuzzer's raw input.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{}, 0.5)                                  // empty data
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f}, 0.0)      // single element, q=0
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f}, 1.0)      // single element, q=1
	f.Add(make([]byte, 64), 0.99)                         // eight zeros
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, 2.5) // q out of range + torn tail
	f.Add(make([]byte, 24), -1.0)                         // q negative

	f.Fuzz(func(t *testing.T, raw []byte, q float64) {
		xs := make([]float64, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[i : i+8]))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue // the NaN-free property is over finite inputs
			}
			xs = append(xs, v)
		}

		m := mean(xs)
		if math.IsNaN(m) && !math.IsInf(sum(xs), 0) {
			t.Fatalf("mean(%v) = NaN from finite inputs", xs)
		}
		if len(xs) == 0 && m != 0 {
			t.Fatalf("mean(empty) = %v, want 0", m)
		}

		sort.Float64s(xs)
		got := quantile(xs, q) // must not panic for any q
		if math.IsNaN(got) {
			t.Fatalf("quantile(%v, %v) = NaN from NaN-free input", xs, q)
		}
		if len(xs) == 0 {
			if got != 0 {
				t.Fatalf("quantile(empty, %v) = %v, want 0", q, got)
			}
			return
		}
		if got < xs[0] || got > xs[len(xs)-1] {
			t.Fatalf("quantile(%v, %v) = %v outside data range [%v, %v]",
				xs, q, got, xs[0], xs[len(xs)-1])
		}
		if q <= 0 && got != xs[0] {
			t.Fatalf("quantile(..., %v) = %v, want minimum %v", q, got, xs[0])
		}
		if q >= 1 && got != xs[len(xs)-1] {
			t.Fatalf("quantile(..., %v) = %v, want maximum %v", q, got, xs[len(xs)-1])
		}
	})
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
