package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"deflation/internal/cascade"
	"deflation/internal/hypervisor"
	"deflation/internal/journal"
	"deflation/internal/restypes"
	"deflation/internal/simcg"
	"deflation/internal/substrate"
	"deflation/internal/vm"
)

// newMixedCrashableCluster builds nHyp hypervisor nodes followed by nCtr
// container nodes, all crashable.
func newMixedCrashableCluster(t *testing.T, nHyp, nCtr int) (*Manager, []*crashableNode) {
	t.Helper()
	n := nHyp + nCtr
	nodes := make([]*crashableNode, n)
	servers := make([]Node, n)
	for i := 0; i < n; i++ {
		var (
			sub substrate.Substrate
			err error
		)
		if i < nHyp {
			sub, err = hypervisor.NewHost(hypervisor.Config{
				Name:     fmt.Sprintf("hyp%d", i),
				Capacity: restypes.V(16, 65536, 400, 400),
			})
		} else {
			sub, err = simcg.NewHost(simcg.Config{
				Name:     fmt.Sprintf("cg%d", i-nHyp),
				Capacity: restypes.V(16, 65536, 400, 400),
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = newCrashableNode(NewLocalController(sub, cascade.AllLevels(), ModeDeflation))
		servers[i] = nodes[i]
	}
	m, err := NewManager(servers, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m, nodes
}

func TestLaunchStampsSubstrateAndFiltersPlacement(t *testing.T) {
	m, nodes := newMixedCrashableCluster(t, 1, 1)

	// A spec pinned to "container" must land on the container node even
	// though the hypervisor node has identical free capacity.
	pinned := durSpec("ctr-0", vm.LowPriority, 0.25)
	pinned.Substrate = string(substrate.KindContainer)
	idx, _, err := m.Launch(pinned)
	if err != nil {
		t.Fatal(err)
	}
	if kind := nodeSubstrate(m.Servers()[idx]); kind != string(substrate.KindContainer) {
		t.Fatalf("container-pinned VM landed on a %q node", kind)
	}

	// An unpinned spec is stamped with the landing node's kind so the
	// journaled placement pin survives recovery.
	free := durSpec("free-0", vm.LowPriority, 0.25)
	idx, _, err = m.Launch(free)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.specs["free-0"].Substrate; got != nodeSubstrate(m.Servers()[idx]) {
		t.Errorf("stamped substrate %q != landing node's %q", got, nodeSubstrate(m.Servers()[idx]))
	}
	if got := m.specs["ctr-0"].Substrate; got != string(substrate.KindContainer) {
		t.Errorf("pinned substrate %q lost at launch", got)
	}

	// Inventory reports each VM's backend; container VMs must never show
	// balloon telemetry (no guest kernel, no balloon driver).
	for _, n := range nodes {
		inv, err := n.Inventory()
		if err != nil {
			t.Fatal(err)
		}
		for _, vs := range inv {
			if want := nodeSubstrate(n); vs.Substrate != want {
				t.Errorf("VM %s reports substrate %q on a %q node", vs.Name, vs.Substrate, want)
			}
			if vs.Substrate == string(substrate.KindContainer) && vs.BalloonMB != 0 {
				t.Errorf("container VM %s shows %g MB of balloon", vs.Name, vs.BalloonMB)
			}
		}
	}

	// Substrate kinds surface in the manager's operator view.
	subs := m.Substrates()
	if subs["hyp0"] != "hypervisor" || subs["cg0"] != "container" {
		t.Errorf("Substrates() = %v", subs)
	}
}

func TestMixedClusterRejectsUnplaceableSubstrate(t *testing.T) {
	m, _ := newMixedCrashableCluster(t, 1, 0)
	pinned := durSpec("ctr-0", vm.LowPriority, 0.25)
	pinned.Substrate = string(substrate.KindContainer)
	if _, _, err := m.Launch(pinned); err == nil {
		t.Fatal("container-pinned launch admitted on an all-hypervisor fleet")
	}
}

// newDurableMixedCluster is newDurableCluster over a mixed fleet.
func newDurableMixedCluster(t *testing.T, dir string, nHyp, nCtr int) (*Manager, []*crashableNode) {
	t.Helper()
	m, nodes := newMixedCrashableCluster(t, nHyp, nCtr)
	j, err := journal.Open(dir, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachJournal(j, 1<<30)
	return m, nodes
}

// TestRecoverRestoresContainerBackedVMs is the crash-point property for the
// container substrate: a SIGKILLed manager recovering over a mixed fleet
// must restore every VM's substrate kind from the journal, and a container
// node's death must re-place its VMs only onto container nodes.
func TestRecoverRestoresContainerBackedVMs(t *testing.T) {
	dir := t.TempDir()
	m, nodes := newDurableMixedCluster(t, dir, 2, 2)
	for i := 0; i < 8; i++ {
		s := durSpec(fmt.Sprintf("vm-%d", i), vm.LowPriority, 0.25)
		// Half the fleet explicitly container-backed so both substrates
		// carry VMs regardless of how the policy packs the rest.
		if i%2 == 0 {
			s.Substrate = string(substrate.KindContainer)
		}
		if _, _, err := m.Launch(s); err != nil {
			t.Fatal(err)
		}
	}
	want := m.Placements()
	wantSub := make(map[string]string)
	for name := range want {
		wantSub[name] = m.specs[name].Substrate
		if wantSub[name] == "" {
			t.Fatalf("launch left %s without a substrate stamp", name)
		}
	}
	m.Journal().Close()

	servers := make([]Node, len(nodes))
	for i, n := range nodes {
		servers[i] = n
	}
	m2, rep, err := Recover(DurabilityConfig{Dir: dir}, servers, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Journal().Close()
	if rep.Replaced != 0 || rep.Lost != 0 {
		t.Fatalf("clean mixed recovery repaired something: %+v", rep)
	}
	if got := m2.Placements(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered placements = %v, want %v", got, want)
	}
	for name, sub := range wantSub {
		if got := m2.specs[name].Substrate; got != sub {
			t.Errorf("VM %s recovered with substrate %q, want %q", name, got, sub)
		}
	}

	// Crash a container node: its VMs carry a "container" pin, so every
	// re-placement must land on the surviving container node.
	var ctrIdx int
	for i, n := range nodes {
		if nodeSubstrate(n) == string(substrate.KindContainer) {
			ctrIdx = i
			break
		}
	}
	var victims []string
	for name, node := range m2.Placements() {
		if node == nodes[ctrIdx].Name() {
			victims = append(victims, name)
		}
	}
	if len(victims) == 0 {
		t.Fatal("no VM landed on the first container node")
	}
	nodes[ctrIdx].crash()
	probeUntilDead(t, m2)
	for _, name := range victims {
		node, ok := m2.Placements()[name]
		if !ok {
			continue // lost for capacity reasons, not substrate ones
		}
		for i, n := range nodes {
			if n.Name() == node && nodeSubstrate(nodes[i]) != string(substrate.KindContainer) {
				t.Errorf("container VM %s re-placed onto %q node %s", name, nodeSubstrate(nodes[i]), node)
			}
		}
	}
}

// TestRecoverMidMigrationContainer: the in-flight-resolution property holds
// on the container substrate too — a manager SIGKILLed between a container
// checkpoint landing on the destination and the journal recording the move
// adopts the copy and releases the stale source.
func TestRecoverMidMigrationContainer(t *testing.T) {
	dir := t.TempDir()
	m, nodes := newDurableMixedCluster(t, dir, 0, 2)
	if _, _, err := m.Launch(durSpec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	srcIdx := 0
	if m.Placements()["a"] == nodes[1].Name() {
		srcIdx = 1
	}
	dstIdx := 1 - srcIdx

	m.record(Event{Kind: evMigrateStart, VM: "a", Node: nodes[dstIdx].Name(), From: nodes[srcIdx].Name()})
	cp, err := nodes[srcIdx].Checkpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if cp.VM.Domain.Kind != substrate.KindContainer || cp.VM.Domain.Container == nil {
		t.Fatalf("container checkpoint kind/state = %q/%v", cp.VM.Domain.Kind, cp.VM.Domain.Container)
	}
	if err := nodes[dstIdx].RestoreVM(cp); err != nil {
		t.Fatal(err)
	}
	m.Journal().Close()

	m2, rep, err := Recover(DurabilityConfig{Dir: dir}, []Node{nodes[0], nodes[1]}, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Journal().Close()
	if rep.MigrationsResolved != 1 {
		t.Fatalf("report: %+v, want the in-flight container move resolved", rep)
	}
	if m2.Placements()["a"] != nodes[dstIdx].Name() {
		t.Errorf("placement %q, want destination", m2.Placements()["a"])
	}
	if has, _ := nodes[srcIdx].Has("a"); has {
		t.Error("stale source container not released")
	}
	// The restored instance is still container-backed.
	inst, err := nodes[dstIdx].LocalController.Host().Lookup("a")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind() != substrate.KindContainer {
		t.Errorf("restored instance kind = %q", inst.Kind())
	}
}

// TestMigrationTargetsRespectSubstrate drains a container node and verifies
// every move lands on the other container node, never on the (emptier)
// hypervisor nodes.
func TestMigrationTargetsRespectSubstrate(t *testing.T) {
	m, nodes := newMixedCrashableCluster(t, 2, 2)
	pinned := durSpec("c0", vm.LowPriority, 0.25)
	pinned.Substrate = string(substrate.KindContainer)
	idx, _, err := m.Launch(pinned)
	if err != nil {
		t.Fatal(err)
	}
	src := m.Servers()[idx].Name()
	moved, failed, err := m.Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 1 || len(failed) != 0 {
		t.Fatalf("drain moved %d / failed %v", len(moved), failed)
	}
	dst := m.Placements()["c0"]
	for i, n := range nodes {
		if n.Name() == dst && nodeSubstrate(nodes[i]) != string(substrate.KindContainer) {
			t.Errorf("drain moved a container VM to %q node %s", nodeSubstrate(nodes[i]), dst)
		}
	}
	if dst == src {
		t.Errorf("drain left c0 on the source")
	}
}

// Mixed-fleet chaos: half the fleet on containers, full HA fault mix. Two
// same-seed runs must be byte-identical and takeovers must never evict a
// healthy workload — the substrate split does not weaken either invariant.
func TestMixedFleetChaosSimDeterministicNoHealthyEvictions(t *testing.T) {
	mixed := func() SimConfig {
		cfg := haChaosSim()
		cfg.ContainerFraction = 0.5
		return cfg
	}
	a, err := RunSim(mixed())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(mixed())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("mixed-fleet chaos sim not deterministic:\n%+v\n%+v", a, b)
	}
	if a.FailoverEvictions != 0 {
		t.Errorf("mixed-fleet takeovers evicted %d healthy VMs", a.FailoverEvictions)
	}
	if a.FailurePreemptions != a.VMsReplaced+a.VMsLost {
		t.Errorf("accounting: %d preemptions != %d replaced + %d lost",
			a.FailurePreemptions, a.VMsReplaced, a.VMsLost)
	}
}

// ContainerFraction zero must take exactly the historical all-hypervisor
// path: identical results to a config that predates the field.
func TestZeroContainerFractionReproducesBaseline(t *testing.T) {
	baseline, err := RunSim(smallSim(ModeDeflation, 1.6))
	if err != nil {
		t.Fatal(err)
	}
	zeroed := smallSim(ModeDeflation, 1.6)
	zeroed.ContainerFraction = 0
	got, err := RunSim(zeroed)
	if err != nil {
		t.Fatal(err)
	}
	if got != baseline {
		t.Errorf("ContainerFraction=0 diverged from baseline:\n%+v\n%+v", got, baseline)
	}
}
