package cluster

import (
	"errors"
	"fmt"
	"testing"

	"deflation/internal/cascade"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func newCluster(t *testing.T, n int, policy PlacementPolicy) *Manager {
	t.Helper()
	servers := make([]Node, n)
	for i := range servers {
		h, err := hypervisor.NewHost(hypervisor.Config{
			Name:     fmt.Sprintf("s%d", i),
			Capacity: restypes.V(16, 65536, 400, 400),
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = NewLocalController(h, cascade.AllLevels(), ModeDeflation)
	}
	m, err := NewManager(servers, policy, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	// An empty fleet is legal: a federated shard starts with zero nodes and
	// grows through AddNode. It must refuse work, not panic.
	m, err := NewManager(nil, BestFit, 1)
	if err != nil {
		t.Fatalf("empty manager rejected: %v", err)
	}
	if _, _, err := m.Launch(spec("a", vm.LowPriority, 0.25)); err == nil {
		t.Error("empty manager accepted a launch")
	}
	if snap := m.Snapshot(); len(snap.ServerOvercommitment) != 0 {
		t.Errorf("empty manager snapshot servers = %d", len(snap.ServerOvercommitment))
	}
}

func TestLaunchAndRelease(t *testing.T) {
	m := newCluster(t, 3, BestFit)
	idx, _, err := m.Launch(spec("a", vm.LowPriority, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx > 2 {
		t.Errorf("server index = %d", idx)
	}
	if !m.Placed("a") {
		t.Error("launched VM not placed")
	}
	if _, _, err := m.Launch(spec("a", vm.LowPriority, 0.25)); !errors.Is(err, ErrVMExists) {
		t.Errorf("duplicate err = %v", err)
	}
	if err := m.Release("a"); err != nil {
		t.Fatal(err)
	}
	if m.Placed("a") {
		t.Error("released VM still placed")
	}
	if err := m.Release("a"); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("double release err = %v", err)
	}
}

func TestFirstFitPicksFirstFeasible(t *testing.T) {
	m := newCluster(t, 3, FirstFit)
	for i := 0; i < 3; i++ {
		idx, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 0))
		if err != nil {
			t.Fatal(err)
		}
		if idx != 0 {
			t.Errorf("first-fit placed on server %d, want 0 (still feasible)", idx)
		}
	}
}

func TestBestFitSpreadsByFitness(t *testing.T) {
	m := newCluster(t, 4, BestFit)
	placed := map[int]int{}
	for i := 0; i < 8; i++ {
		idx, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 0.25))
		if err != nil {
			t.Fatal(err)
		}
		placed[idx]++
	}
	if len(placed) == 0 {
		t.Fatal("nothing placed")
	}
	snap := m.Snapshot()
	if snap.VMs != 8 {
		t.Errorf("snapshot VMs = %d, want 8", snap.VMs)
	}
	if snap.MeanOvercommitment <= 0 || snap.MaxOvercommitment < snap.MeanOvercommitment {
		t.Errorf("snapshot overcommit: %+v", snap)
	}
	if len(snap.ServerOvercommitment) != 4 {
		t.Errorf("per-server stats = %d entries", len(snap.ServerOvercommitment))
	}
}

func TestTwoChoicesIsDeterministicPerSeed(t *testing.T) {
	run := func() []int {
		m := newCluster(t, 8, TwoChoices)
		var idxs []int
		for i := 0; i < 10; i++ {
			idx, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 0.25))
			if err != nil {
				t.Fatal(err)
			}
			idxs = append(idxs, idx)
		}
		return idxs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("2-choices differs across identical seeds: %v vs %v", a, b)
		}
	}
}

func TestRejectionWhenFull(t *testing.T) {
	m := newCluster(t, 1, BestFit)
	// Minimum size = nominal: nothing deflatable at all.
	for i := 0; i < 4; i++ {
		if _, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := m.Launch(spec("overflow", vm.LowPriority, 1.0))
	if !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
	if m.Rejected() != 1 {
		t.Errorf("rejected = %d, want 1", m.Rejected())
	}
}

func TestHighPriorityFallbackPreempts(t *testing.T) {
	m := newCluster(t, 2, BestFit)
	for i := 0; i < 8; i++ {
		if _, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	// Lows barely deflatable: high must preempt somewhere.
	_, rep, err := m.Launch(spec("hi", vm.HighPriority, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Preempted) == 0 {
		t.Error("no preemption on forced high-priority placement")
	}
	if m.Preemptions() != len(rep.Preempted) {
		t.Errorf("manager preemptions %d != %d", m.Preemptions(), len(rep.Preempted))
	}
	// Preempted VMs are no longer placed.
	for _, name := range rep.Preempted {
		if m.Placed(name) {
			t.Errorf("preempted VM %s still placed", name)
		}
	}
}

func TestPlacementPolicyString(t *testing.T) {
	if BestFit.String() != "best-fit" || FirstFit.String() != "first-fit" || TwoChoices.String() != "2-choices" {
		t.Error("policy strings wrong")
	}
}
