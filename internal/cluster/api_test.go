package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func newControllerServer(t *testing.T) (*httptest.Server, *LocalController) {
	t.Helper()
	ctrl := newServer(t, ModeDeflation)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return srv, ctrl
}

func wireSpec(name string, prio vm.Priority) LaunchSpec {
	return LaunchSpec{
		Name:     name,
		Size:     restypes.V(4, 16384, 100, 100),
		MinSize:  restypes.V(1, 4096, 25, 25),
		Priority: prio,
		AppKind:  "elastic",
		Warm:     true,
	}
}

func TestControllerAPILifecycle(t *testing.T) {
	srv, ctrl := newControllerServer(t)
	node, err := NewRemoteNode(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if node.Name() != "s0" {
		t.Errorf("remote name = %q", node.Name())
	}
	if node.Mode() != ModeDeflation {
		t.Errorf("remote mode = %v", node.Mode())
	}

	// Launch via HTTP, observe via local controller and vice versa.
	rep, err := node.Launch(wireSpec("a", vm.LowPriority))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Preempted) != 0 {
		t.Errorf("launch report: %+v", rep)
	}
	if ok, _ := ctrl.Has("a"); !ok {
		t.Error("VM not visible locally after remote launch")
	}
	if ok, err := node.Has("a"); !ok || err != nil {
		t.Errorf("VM not visible remotely after launch: %v, %v", ok, err)
	}
	if _, err := node.Launch(wireSpec("a", vm.LowPriority)); err == nil {
		t.Error("duplicate remote launch accepted")
	}

	// Capacity vectors round-trip.
	if got, want := node.Free(), ctrl.Free(); got != want {
		t.Errorf("remote Free = %v, want %v", got, want)
	}
	if got, want := node.Availability(), ctrl.Availability(); got != want {
		t.Errorf("remote Availability = %v, want %v", got, want)
	}
	if got, want := node.PreemptableCeiling(), ctrl.PreemptableCeiling(); got != want {
		t.Errorf("remote ceiling = %v, want %v", got, want)
	}
	if got, want := node.Overcommitment(), ctrl.Overcommitment(); got != want {
		t.Errorf("remote overcommitment = %v, want %v", got, want)
	}

	if err := node.Release("a"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := ctrl.Has("a"); ok {
		t.Error("VM still present after remote release")
	}
	if err := node.Release("a"); err == nil {
		t.Error("double remote release accepted")
	}
}

func TestControllerAPIRejectsNewAppOverWire(t *testing.T) {
	srv, _ := newControllerServer(t)
	node, err := NewRemoteNode(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	spec := wireSpec("x", vm.LowPriority)
	spec.NewApp = func(restypes.Vector) vm.Application { return nil }
	if _, err := node.Launch(spec); err == nil {
		t.Error("NewApp-bearing spec accepted for remote launch")
	}
}

func TestControllerAPIDeflateEndpoint(t *testing.T) {
	srv, ctrl := newControllerServer(t)
	node, err := NewRemoteNode(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Launch(wireSpec("a", vm.LowPriority)); err != nil {
		t.Fatal(err)
	}

	body := `{"target":{"CPU":2,"MemoryMB":8192,"DiskMBps":0,"NetMBps":0}}`
	resp, err := http.Post(srv.URL+"/v1/vms/a/deflate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deflate status = %s", resp.Status)
	}
	var dr DeflateVMResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	v, _ := ctrl.VM("a")
	if v.Allocation().CPU != 2 || v.Allocation().MemoryMB != 8192 {
		t.Errorf("allocation after remote deflate = %v", v.Allocation())
	}
	if dr.NewAllocation != v.Allocation() {
		t.Errorf("response allocation %v != actual %v", dr.NewAllocation, v.Allocation())
	}

	// Deflating a missing VM 404s.
	resp2, err := http.Post(srv.URL+"/v1/vms/ghost/deflate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("ghost deflate status = %s", resp2.Status)
	}
}

func TestManagerOverRemoteNodes(t *testing.T) {
	// Full control-plane path: manager places VMs across two servers it
	// only reaches via HTTP.
	var nodes []Node
	for i := 0; i < 2; i++ {
		srv, _ := newControllerServer(t)
		n, err := NewRemoteNode(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	mgr, err := NewManager(nodes, BestFit, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if _, _, err := mgr.Launch(wireSpec(name, vm.LowPriority)); err != nil {
			t.Fatalf("launch %s: %v", name, err)
		}
	}
	if !mgr.Placed("a") || !mgr.Placed("d") {
		t.Error("VMs not placed via remote nodes")
	}
	if err := mgr.Release("b"); err != nil {
		t.Fatal(err)
	}
	if mgr.Placed("b") {
		t.Error("released VM still placed")
	}
}

func TestManagerAPI(t *testing.T) {
	mgr := newCluster(t, 2, BestFit)
	api, err := NewManagerAPI(mgr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	// Launch.
	body, _ := json.Marshal(wireSpec("a", vm.LowPriority))
	resp, err := http.Post(srv.URL+"/v1/vms", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var lr LaunchResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || lr.Server == "" {
		t.Fatalf("launch: %s, %+v", resp.Status, lr)
	}

	// Cluster state with servers.
	resp, err = http.Get(srv.URL + "/v1/cluster?servers=true")
	if err != nil {
		t.Fatal(err)
	}
	var cs ClusterState
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cs.VMs != 1 || len(cs.Servers) != 2 {
		t.Errorf("cluster state: %+v", cs)
	}

	// Release.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/vms/a", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("release status = %s", resp.Status)
	}

	// Releasing again 404s.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double-release status = %s", resp.Status)
	}
}

func TestManagerAPIMigrate(t *testing.T) {
	mgr := newCluster(t, 2, FirstFit)
	api, err := NewManagerAPI(mgr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	if _, _, err := mgr.Launch(spec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	src := mgr.Placements()["a"]
	var dest string
	for _, s := range mgr.Servers() {
		if s.Name() != src {
			dest = s.Name()
		}
	}

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/migrate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	marshal := func(req MigrateRequest) string {
		b, _ := json.Marshal(req)
		return string(b)
	}

	// Error paths surface as non-2xx statuses the CLI reports verbatim.
	if resp := post("{not json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %s", resp.Status)
	}
	if resp := post(marshal(MigrateRequest{VM: "a"})); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing dest status = %s", resp.Status)
	}
	if resp := post(marshal(MigrateRequest{VM: "ghost", Dest: dest})); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown VM status = %s", resp.Status)
	}
	if resp := post(marshal(MigrateRequest{VM: "a", Dest: "nowhere"})); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown node status = %s", resp.Status)
	}
	if resp := post(marshal(MigrateRequest{VM: "a", Dest: src})); resp.StatusCode != http.StatusConflict {
		t.Errorf("same-node status = %s", resp.Status)
	}

	// Success returns the full migration report.
	resp := post(marshal(MigrateRequest{VM: "a", Dest: dest}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate status = %s", resp.Status)
	}
	var rep MigrationReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.From != src || rep.To != dest || !rep.Result.Converged || rep.Result.TransferredMB <= 0 {
		t.Errorf("report: %+v", rep)
	}
	if got := mgr.Placements()["a"]; got != dest {
		t.Errorf("placement %q, want %q", got, dest)
	}
}

func TestAppKindRegistry(t *testing.T) {
	if _, err := AppKind("no-such-kind"); err == nil {
		t.Error("unknown kind resolved")
	}
	kinds := AppKinds()
	for _, want := range []string{"elastic", "inelastic", "memcached", "memcached-aware", "specjbb", "kcompile", "spark-kmeans"} {
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin kind %q missing from %v", want, kinds)
		}
	}
	for _, kind := range kinds {
		f, err := AppKind(kind)
		if err != nil {
			t.Fatal(err)
		}
		app := f(restypes.V(4, 16384, 100, 100))
		if app == nil || app.Name() == "" {
			t.Errorf("kind %q built a bad app", kind)
		}
	}
}

func TestRegisterAppKindValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty registration did not panic")
		}
	}()
	RegisterAppKind("", nil)
}
