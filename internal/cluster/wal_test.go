package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"deflation/internal/faults"
	"deflation/internal/journal"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// durSpec is a fully-serializable launch spec (AppKind, no closure), as a
// durable deployment would use: replayed and re-placed specs must relaunch
// from the registry.
func durSpec(name string, prio vm.Priority, minFrac float64) LaunchSpec {
	size := restypes.V(4, 16384, 100, 100)
	kind := "elastic"
	if prio == vm.HighPriority {
		kind = "inelastic"
	}
	return LaunchSpec{
		Name: name, Size: size, MinSize: size.Scale(minFrac), Priority: prio,
		AppKind: kind, Warm: true,
	}
}

// newDurableCluster builds a crashable cluster whose manager journals every
// transition into dir. snapshotEvery <= 0 disables compaction so tests can
// slice the raw log.
func newDurableCluster(t *testing.T, dir string, n int, snapshotEvery int) (*Manager, []*crashableNode) {
	t.Helper()
	m, nodes := newCrashableCluster(t, n, BestFit)
	j, err := journal.Open(dir, journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if snapshotEvery <= 0 {
		snapshotEvery = 1 << 30
	}
	m.AttachJournal(j, snapshotEvery)
	return m, nodes
}

// scriptedRun drives a manager through every journaled transition kind:
// launches, a release, a rejection, a node crash with eviction and
// re-placement, and an empty rejoin.
func scriptedRun(t *testing.T, m *Manager, nodes []*crashableNode) {
	t.Helper()
	for i := 0; i < 6; i++ {
		if _, _, err := m.Launch(durSpec(fmt.Sprintf("vm-%d", i), vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := m.Launch(durSpec("hp-0", vm.HighPriority, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Release("vm-5"); err != nil {
		t.Fatal(err)
	}
	// A completed and a failed live migration, exercising all three
	// migration event kinds.
	migrateOff := func(name string) string {
		src := m.Placements()[name]
		for _, s := range m.Servers() {
			if s.Name() != src {
				return s.Name()
			}
		}
		t.Fatalf("no migration target for %s", name)
		return ""
	}
	if _, err := m.Migrate("vm-0", migrateOff("vm-0")); err != nil {
		t.Fatal(err)
	}
	m.SetMigrationFaults(faults.New(faults.Config{MigrationFailProb: 1, Seed: 5}))
	if _, err := m.Migrate("vm-1", migrateOff("vm-1")); err == nil {
		t.Fatal("fault-injected migration unexpectedly succeeded")
	}
	m.SetMigrationFaults(nil)
	// A rejection: far larger than any server.
	huge := durSpec("huge", vm.LowPriority, 1.0)
	huge.Size = restypes.V(1024, 1<<30, 1, 1)
	huge.MinSize = huge.Size
	if _, _, err := m.Launch(huge); err == nil {
		t.Fatal("huge launch unexpectedly admitted")
	}
	nodes[0].crash()
	probeUntilDead(t, m)
	nodes[0].recover()
	m.ProbeHealth() // rejoin (empty after crash-stop)
}

func TestRecoverRestoresPlacementsWithoutEvictions(t *testing.T) {
	dir := t.TempDir()
	m, nodes := newDurableCluster(t, dir, 3, 0)
	scriptedRun(t, m, nodes)
	want := m.Placements()
	wantStats := m.Snapshot()
	preempts := make([]int, len(nodes))
	vmCounts := make([]int, len(nodes))
	for i, n := range nodes {
		preempts[i] = n.Preemptions()
		vmCounts[i] = len(n.VMs())
	}
	if err := m.Journal().Close(); err != nil {
		t.Fatal(err)
	}

	// SIGKILL-equivalent: the manager object is dropped with no farewell
	// write; Recover rebuilds from the same dir against the same (still
	// running) nodes.
	servers := make([]Node, len(nodes))
	for i, n := range nodes {
		servers[i] = n
	}
	m2, rep, err := Recover(DurabilityConfig{Dir: dir}, servers, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Journal().Close()
	if got := m2.Placements(); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered placements = %v, want %v", got, want)
	}
	// Healthy VMs must survive recovery untouched: no repairs, no new
	// preemptions, node inventories unchanged.
	if rep.Adopted != 0 || rep.Replaced != 0 || rep.Lost != 0 || rep.Reasserted != 0 || rep.StaleReleased != 0 {
		t.Errorf("clean recovery repaired something: %+v", rep)
	}
	for i, n := range nodes {
		if n.Preemptions() != preempts[i] {
			t.Errorf("node %d preemptions %d != %d after recovery", i, n.Preemptions(), preempts[i])
		}
		if len(n.VMs()) != vmCounts[i] {
			t.Errorf("node %d runs %d VMs != %d after recovery", i, len(n.VMs()), vmCounts[i])
		}
	}
	// Counters carry over.
	got := m2.Snapshot()
	if got.FailurePreemptions != wantStats.FailurePreemptions ||
		got.ReplacedVMs != wantStats.ReplacedVMs || got.LostVMs != wantStats.LostVMs {
		t.Errorf("recovered stats %+v, want %+v", got, wantStats)
	}
	if m2.Rejected() != 1 {
		t.Errorf("Rejected = %d after recovery, want 1", m2.Rejected())
	}
	if rep.Placements != len(want) {
		t.Errorf("report placements = %d, want %d", rep.Placements, len(want))
	}

	// The recovered manager keeps journaling: a new launch survives another
	// recovery.
	if _, _, err := m2.Launch(durSpec("post-recovery", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	m2.Journal().Close()
	m3, _, err := Recover(DurabilityConfig{Dir: dir}, servers, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Journal().Close()
	if _, ok := m3.Placements()["post-recovery"]; !ok {
		t.Error("post-recovery launch lost by second recovery")
	}
}

// TestReplayCrashPointInsensitive is the satellite property test: replaying
// any prefix of the journal truncated at a record boundary (and with a torn
// final record) yields a consistent state, and double-replay equals
// single-replay at every crash point.
func TestReplayCrashPointInsensitive(t *testing.T) {
	dir := t.TempDir()
	m, nodes := newDurableCluster(t, dir, 3, 0)
	scriptedRun(t, m, nodes)
	liveState := m.walState()
	if err := m.Journal().Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	// Split keeping each record's terminating newline so every prefix is a
	// well-formed log ending at a record boundary.
	lines := strings.SplitAfter(string(raw), "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < 10 {
		t.Fatalf("scripted run journaled only %d records", len(lines))
	}

	replay := func(t *testing.T, dir string) (*WALState, *journal.Journal) {
		t.Helper()
		j, err := journal.Open(dir, journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := NewWALState()
		for _, rec := range j.Tail() {
			if err := st.Apply(rec); err != nil {
				t.Fatal(err)
			}
		}
		return st, j
	}

	for k := 0; k <= len(lines); k++ {
		pdir := t.TempDir()
		prefix := strings.Join(lines[:k], "")
		if err := os.WriteFile(filepath.Join(pdir, "journal.log"), []byte(prefix), 0o644); err != nil {
			t.Fatal(err)
		}
		once, j := replay(t, pdir)
		// Idempotency: replaying the same records again must change nothing,
		// counters included.
		twice := *once
		twice.Placements = copyMap(once.Placements)
		twice.Specs = copySpecs(once.Specs)
		twice.Dead = copyMap2(once.Dead)
		twice.Migrating = copyIntents(once.Migrating)
		for _, rec := range j.Tail() {
			if err := twice.Apply(rec); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		if !reflect.DeepEqual(*once, twice) {
			t.Fatalf("prefix %d: double-replay diverged:\n%+v\n%+v", k, *once, twice)
		}
		if k > 0 && once.AppliedSeq == 0 {
			t.Fatalf("prefix %d: nothing applied", k)
		}
		// Consistency: every placement has a spec and vice versa.
		for name := range once.Placements {
			if _, ok := once.Specs[name]; !ok {
				t.Fatalf("prefix %d: placement %q has no spec", k, name)
			}
		}

		// Torn crash point: the next record half-written. Replay must land on
		// exactly the k-record state.
		if k < len(lines) {
			tdir := t.TempDir()
			torn := prefix + lines[k][:len(lines[k])/2]
			if err := os.WriteFile(filepath.Join(tdir, "journal.log"), []byte(torn), 0o644); err != nil {
				t.Fatal(err)
			}
			tornState, tj := replay(t, tdir)
			tj.Close()
			if !reflect.DeepEqual(*once, *tornState) {
				t.Fatalf("prefix %d + torn record diverged from clean prefix:\n%+v\n%+v", k, *once, *tornState)
			}
		}
	}

	// The full log replays to exactly the live manager's state.
	full, j := replay(t, dir)
	j.Close()
	liveState.AppliedSeq = full.AppliedSeq // live state is not seq-stamped
	if !reflect.DeepEqual(*full, *liveState) {
		t.Errorf("full replay != live state:\n%+v\n%+v", *full, *liveState)
	}
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copySpecs(m map[string]LaunchSpec) map[string]LaunchSpec {
	out := make(map[string]LaunchSpec, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyMap2(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyIntents(m map[string]MigrationIntent) map[string]MigrationIntent {
	out := make(map[string]MigrationIntent, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// TestRecoverMidMigration SIGKILLs the manager at the two decisive points of
// a live migration. The journal records the intent (evMigrateStart) before
// anything moves and the placement change (evMigrateDone) only after the
// destination holds the copy, so recovery resolves the in-flight entry by
// asking the destination: copy absent → roll back to the source; copy
// present → adopt the move and release the stale source copy. Either way
// the VM is neither lost nor double-placed.
func TestRecoverMidMigration(t *testing.T) {
	setup := func(t *testing.T, dir string) (m *Manager, nodes []*crashableNode, srcIdx, dstIdx int) {
		m, nodes = newDurableCluster(t, dir, 2, 0)
		if _, _, err := m.Launch(durSpec("a", vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
		srcIdx = 0
		if m.Placements()["a"] == nodes[1].Name() {
			srcIdx = 1
		}
		return m, nodes, srcIdx, 1 - srcIdx
	}
	recover2 := func(t *testing.T, dir string, nodes []*crashableNode) (*Manager, *RecoveryReport) {
		t.Helper()
		m2, rep, err := Recover(DurabilityConfig{Dir: dir}, []Node{nodes[0], nodes[1]}, BestFit, 7)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m2.Journal().Close() })
		return m2, rep
	}

	t.Run("before switchover rolls back", func(t *testing.T) {
		dir := t.TempDir()
		m, nodes, srcIdx, dstIdx := setup(t, dir)
		// The intent journals, then the manager dies before any state moves.
		m.record(Event{Kind: evMigrateStart, VM: "a", Node: nodes[dstIdx].Name(), From: nodes[srcIdx].Name()})
		m.Journal().Close()

		m2, rep := recover2(t, dir, nodes)
		if rep.MigrationsRolledBack != 1 || rep.MigrationsResolved != 0 {
			t.Fatalf("report: %+v, want 1 rolled back / 0 resolved", rep)
		}
		if m2.Placements()["a"] != nodes[srcIdx].Name() {
			t.Errorf("placement %q, want source %q", m2.Placements()["a"], nodes[srcIdx].Name())
		}
		if has, _ := nodes[srcIdx].Has("a"); !has {
			t.Error("VM lost from source")
		}
		if has, _ := nodes[dstIdx].Has("a"); has {
			t.Error("VM double-placed on destination")
		}
		if st := m2.MigrationStats(); st.Migrations != 0 || st.Failures != 1 {
			t.Errorf("stats: %+v", st)
		}
	})

	t.Run("after destination restore adopts the move", func(t *testing.T) {
		dir := t.TempDir()
		m, nodes, srcIdx, dstIdx := setup(t, dir)
		// The copy landed on the destination, but the manager died before
		// journaling evMigrateDone (and before releasing the source).
		m.record(Event{Kind: evMigrateStart, VM: "a", Node: nodes[dstIdx].Name(), From: nodes[srcIdx].Name()})
		cp, err := nodes[srcIdx].Checkpoint("a")
		if err != nil {
			t.Fatal(err)
		}
		if err := nodes[dstIdx].RestoreVM(cp); err != nil {
			t.Fatal(err)
		}
		m.Journal().Close()

		m2, rep := recover2(t, dir, nodes)
		if rep.MigrationsResolved != 1 || rep.MigrationsRolledBack != 0 {
			t.Fatalf("report: %+v, want 1 resolved / 0 rolled back", rep)
		}
		if m2.Placements()["a"] != nodes[dstIdx].Name() {
			t.Errorf("placement %q, want destination %q", m2.Placements()["a"], nodes[dstIdx].Name())
		}
		if has, _ := nodes[dstIdx].Has("a"); !has {
			t.Error("VM lost from destination")
		}
		if has, _ := nodes[srcIdx].Has("a"); has {
			t.Error("stale source copy not released — VM double-placed")
		}
		if rep.StaleReleased != 1 {
			t.Errorf("StaleReleased = %d, want 1", rep.StaleReleased)
		}
		if st := m2.MigrationStats(); st.Migrations != 1 || st.Failures != 0 {
			t.Errorf("stats: %+v", st)
		}
	})
}

func TestRecoverReconciliationRepairs(t *testing.T) {
	dir := t.TempDir()
	m, nodes := newDurableCluster(t, dir, 3, 0)
	placedOn := make(map[string]int)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("vm-%d", i)
		idx, _, err := m.Launch(durSpec(name, vm.LowPriority, 0.25))
		if err != nil {
			t.Fatal(err)
		}
		placedOn[name] = idx
	}
	m.Journal().Close()

	// Divergence injected behind the dead manager's back:
	// 1. vm-0's node lost it (journal-has / node-lost → re-place).
	if err := nodes[placedOn["vm-0"]].LocalController.Release("vm-0"); err != nil {
		t.Fatal(err)
	}
	// 2. A VM the journal never saw (node-has / journal-missing → adopt).
	if _, err := nodes[2].LocalController.Launch(durSpec("orphan", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	// 3. vm-1 was resized out-of-band: the node's ground truth wins
	//    (conflict → re-assert).
	n1 := nodes[placedOn["vm-1"]]
	if err := n1.LocalController.Release("vm-1"); err != nil {
		t.Fatal(err)
	}
	resized := durSpec("vm-1", vm.LowPriority, 0.25)
	resized.Size = restypes.V(2, 8192, 50, 50)
	resized.MinSize = resized.Size.Scale(0.25)
	if _, err := n1.LocalController.Launch(resized); err != nil {
		t.Fatal(err)
	}
	// 4. A stale copy of vm-2 on a node the journal does not place it on.
	staleHost := (placedOn["vm-2"] + 1) % 3
	if _, err := nodes[staleHost].LocalController.Launch(durSpec("vm-2", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}

	servers := make([]Node, len(nodes))
	for i, n := range nodes {
		servers[i] = n
	}
	m2, rep, err := Recover(DurabilityConfig{Dir: dir}, servers, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Journal().Close()

	if rep.Replaced != 1 || rep.Adopted != 1 || rep.Reasserted != 1 || rep.StaleReleased != 1 || rep.Lost != 0 {
		t.Fatalf("repairs = %+v, want 1 replaced / 1 adopted / 1 reasserted / 1 stale / 0 lost", rep)
	}
	pl := m2.Placements()
	if _, ok := pl["vm-0"]; !ok {
		t.Error("lost vm-0 not re-placed")
	}
	if has, _ := nodes[placedOn["vm-0"]].Has("vm-0"); !has {
		// Re-placement may land anywhere; wherever it is, it must be real.
		if node, ok := pl["vm-0"]; ok {
			found := false
			for _, n := range nodes {
				if n.Name() == node {
					found, _ = n.Has("vm-0")
				}
			}
			if !found {
				t.Errorf("vm-0 placement %q does not actually run it", node)
			}
		}
	}
	if node, ok := pl["orphan"]; !ok || node != nodes[2].Name() {
		t.Errorf("orphan not adopted in place: %v", pl)
	}
	if sz := m2.specs["vm-1"].Size; sz != resized.Size {
		t.Errorf("vm-1 spec not re-asserted from ground truth: %v", sz)
	}
	if has, _ := nodes[staleHost].Has("vm-2"); has {
		t.Error("stale vm-2 copy still running on the wrong node")
	}
	if node := pl["vm-2"]; node != servers[placedOn["vm-2"]].Name() {
		t.Errorf("vm-2 moved by stale-release: on %s", node)
	}
	st := m2.Snapshot()
	if st.AdoptedVMs != 1 || st.StaleReleases != 1 {
		t.Errorf("stats: adopted=%d stale=%d", st.AdoptedVMs, st.StaleReleases)
	}
}

func TestRecoverEmptyDirIsFirstBoot(t *testing.T) {
	dir := t.TempDir()
	_, nodes := newCrashableCluster(t, 2, BestFit)
	// One VM already runs on a node (an agent that started first).
	if _, err := nodes[1].LocalController.Launch(durSpec("pre-existing", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	servers := []Node{nodes[0], nodes[1]}
	m, rep, err := Recover(DurabilityConfig{Dir: dir}, servers, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Journal().Close()
	if rep.RecordsReplayed != 0 || rep.SnapshotSeq != 0 {
		t.Errorf("first boot replayed state: %+v", rep)
	}
	if rep.Adopted != 1 {
		t.Errorf("first boot adopted %d VMs, want 1", rep.Adopted)
	}
	if node := m.Placements()["pre-existing"]; node != nodes[1].Name() {
		t.Errorf("pre-existing VM adopted on %q", node)
	}
}

func TestRecoverAfterThousandEventsUnderOneSecond(t *testing.T) {
	dir := t.TempDir()
	m, nodes := newDurableCluster(t, dir, 3, 0)
	// 1k+ journal records: churn launches and releases, keeping a stable
	// core of survivors.
	for i := 0; i < 8; i++ {
		if _, _, err := m.Launch(durSpec(fmt.Sprintf("core-%d", i), vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("churn-%d", i)
		if _, _, err := m.Launch(durSpec(name, vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
		if err := m.Release(name); err != nil {
			t.Fatal(err)
		}
	}
	if seq := m.Journal().Seq(); seq < 1000 {
		t.Fatalf("journal holds %d records, want >= 1000", seq)
	}
	want := m.Placements()
	m.Journal().Close()

	servers := make([]Node, len(nodes))
	for i, n := range nodes {
		servers[i] = n
	}
	start := time.Now()
	m2, rep, err := Recover(DurabilityConfig{Dir: dir}, servers, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Journal().Close()
	elapsed := time.Since(start)
	if rep.RecordsReplayed < 1000 {
		t.Errorf("replayed %d records, want >= 1000", rep.RecordsReplayed)
	}
	if elapsed >= time.Second {
		t.Errorf("recovery of a 1k-event journal took %v, want < 1s", elapsed)
	}
	if !reflect.DeepEqual(m2.Placements(), want) {
		t.Errorf("placements diverged after 1k-event recovery")
	}
}

// TestRejoinWithVMsReconciles covers the satellite fix: a partitioned node
// whose VMs kept running rejoins and is reconciled — stale copies of
// re-placed VMs are released, and VMs the manager wrote off are re-adopted —
// instead of being treated as fresh empty capacity.
func TestRejoinWithVMsReconciles(t *testing.T) {
	m, nodes := newCrashableCluster(t, 3, BestFit)
	for i := 0; i < 6; i++ {
		if _, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	victim := -1
	for _, idx := range m.placement {
		victim = idx
		break
	}
	var victimVMs []string
	for name, idx := range m.placement {
		if idx == victim {
			victimVMs = append(victimVMs, name)
		}
	}
	if len(victimVMs) == 0 {
		t.Fatal("victim hosts nothing")
	}

	// Partition (not crash): VMs keep running on the isolated node. The
	// manager declares it dead and re-places its VMs elsewhere.
	nodes[victim].isolate()
	probeUntilDead(t, m)
	for _, name := range victimVMs {
		if idx, ok := m.placement[name]; !ok || idx == victim {
			t.Fatalf("VM %s not re-placed off the partitioned node", name)
		}
	}

	// Heal: the node rejoins still holding the old copies; every one is now
	// stale (placed elsewhere) and must be released, not double-run.
	nodes[victim].heal()
	events := m.ProbeHealth()
	var ups, stale, adopted int
	for _, ev := range events {
		switch ev.Kind {
		case NodeUp:
			ups++
		case VMStaleReleased:
			stale++
			if ev.Node != nodes[victim].Name() {
				t.Errorf("stale release on %s, want %s", ev.Node, nodes[victim].Name())
			}
		case VMAdopted:
			adopted++
		}
	}
	if ups != 1 || stale != len(victimVMs) || adopted != 0 {
		t.Fatalf("rejoin events: %d up / %d stale / %d adopted, want 1/%d/0 (%v)",
			ups, stale, adopted, len(victimVMs), events)
	}
	if n := len(nodes[victim].VMs()); n != 0 {
		t.Errorf("partitioned node still runs %d stale VMs after reconciliation", n)
	}
	if st := m.Snapshot(); st.StaleReleases != len(victimVMs) {
		t.Errorf("StaleReleases = %d, want %d", st.StaleReleases, len(victimVMs))
	}
}

func TestRejoinAdoptsUnplaceableVMs(t *testing.T) {
	m, nodes := newCrashableCluster(t, 2, BestFit)
	// Fill both servers with undeflatable VMs so evicted VMs cannot be
	// re-placed anywhere.
	for i := 0; i < 8; i++ {
		if _, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	var victimVMs []string
	for name, idx := range m.placement {
		if idx == 0 {
			victimVMs = append(victimVMs, name)
		}
	}
	if len(victimVMs) == 0 {
		t.Fatal("server 0 hosts nothing")
	}
	nodes[0].isolate()
	events := probeUntilDead(t, m)
	var lost int
	for _, ev := range events {
		if ev.Kind == VMLost {
			lost++
		}
	}
	if lost != len(victimVMs) {
		t.Fatalf("lost %d VMs, want %d", lost, len(victimVMs))
	}

	// The node rejoins with its VMs intact: they were written off as lost,
	// so reconciliation re-adopts every one.
	nodes[0].heal()
	var adopted int
	for _, ev := range m.ProbeHealth() {
		if ev.Kind == VMAdopted {
			adopted++
		}
	}
	if adopted != len(victimVMs) {
		t.Fatalf("adopted %d VMs on rejoin, want %d", adopted, len(victimVMs))
	}
	for _, name := range victimVMs {
		if idx, ok := m.placement[name]; !ok || idx != 0 {
			t.Errorf("VM %s not re-adopted onto server 0", name)
		}
	}
	if st := m.Snapshot(); st.AdoptedVMs != len(victimVMs) {
		t.Errorf("AdoptedVMs = %d, want %d", st.AdoptedVMs, len(victimVMs))
	}
}

func TestSnapshotCompactionPreservesRecovery(t *testing.T) {
	dir := t.TempDir()
	// Snapshot every 4 records: the scripted run compacts several times, so
	// recovery exercises snapshot + tail replay rather than pure log replay.
	m, nodes := newDurableCluster(t, dir, 3, 4)
	scriptedRun(t, m, nodes)
	want := m.Placements()
	m.Journal().Close()

	servers := make([]Node, len(nodes))
	for i, n := range nodes {
		servers[i] = n
	}
	m2, rep, err := Recover(DurabilityConfig{Dir: dir, SnapshotEvery: 4}, servers, BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Journal().Close()
	if rep.SnapshotSeq == 0 {
		t.Error("no snapshot was compacted at SnapshotEvery=4")
	}
	if !reflect.DeepEqual(m2.Placements(), want) {
		t.Errorf("placements after snapshot+tail recovery = %v, want %v", m2.Placements(), want)
	}
}
