package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"deflation/internal/cascade"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// TestQuickControllerInvariants drives random launch/release sequences
// through a server and checks the physical-safety invariants after every
// operation: allocations never exceed capacity, availability arithmetic is
// consistent, and every live VM's allocation stays within [minSize, size].
func TestQuickControllerInvariants(t *testing.T) {
	capacity := restypes.V(16, 65536, 400, 400)
	f := func(raw []uint16) bool {
		h, err := hypervisor.NewHost(hypervisor.Config{Name: "s", Capacity: capacity})
		if err != nil {
			return false
		}
		c := NewLocalController(h, cascade.AllLevels(), ModeDeflation)
		next := 0
		for _, x := range raw {
			switch x % 3 {
			case 0, 1: // launch
				cpu := float64(1 + x%4)
				size := restypes.V(cpu, cpu*4096, 25*cpu, 25*cpu)
				prio := vm.LowPriority
				if x%16 == 7 {
					prio = vm.HighPriority
				}
				name := fmt.Sprintf("v%d", next)
				next++
				// Launches may legitimately fail when full.
				_, _, _ = c.LaunchVM(LaunchSpec{
					Name: name, Size: size, MinSize: size.Scale(0.25),
					Priority: prio, AppKind: "elastic", Warm: x%4 == 0,
				})
			case 2: // release an arbitrary live VM
				if vms := c.VMs(); len(vms) > 0 {
					if err := c.Release(vms[int(x)%len(vms)].Name()); err != nil {
						return false
					}
				}
			}

			// Invariants.
			if !c.Host().Allocated().Fits(capacity) {
				return false
			}
			free := c.Free()
			if free != free.ClampNonNegative() {
				return false
			}
			if got, want := c.Availability(), free.Add(c.Deflatable()); got != want {
				return false
			}
			for _, v := range c.VMs() {
				alloc := v.Allocation()
				if !alloc.Fits(v.Size()) {
					return false
				}
				if v.Priority() == vm.LowPriority && !v.MinSize().Fits(alloc.Add(restypes.Uniform(1e-6))) {
					return false
				}
				if v.Priority() == vm.HighPriority && alloc != v.Size() {
					return false
				}
				if v.Env().OOMKilled {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickSplitPoliciesMeetTargets: whatever the split policy, a feasible
// launch always ends with the new VM fully allocated and physical capacity
// respected.
func TestQuickSplitPoliciesMeetTargets(t *testing.T) {
	capacity := restypes.V(16, 65536, 400, 400)
	for _, split := range []SplitPolicy{SplitProportional, SplitEqual, SplitLargestFirst} {
		split := split
		f := func(seed uint16) bool {
			h, err := hypervisor.NewHost(hypervisor.Config{Name: "s", Capacity: capacity})
			if err != nil {
				return false
			}
			c := NewLocalController(h, cascade.AllLevels(), ModeDeflation)
			c.SetSplitPolicy(split)
			// Fill the host, then squeeze in one more.
			n := 2 + int(seed%3)
			size := restypes.V(16/float64(n), 65536/float64(n), 400/float64(n), 400/float64(n))
			for i := 0; i < n; i++ {
				if _, _, err := c.LaunchVM(LaunchSpec{
					Name: fmt.Sprintf("v%d", i), Size: size, MinSize: size.Scale(0.2),
					Priority: vm.LowPriority, AppKind: "elastic",
				}); err != nil {
					return false
				}
			}
			newVM, _, err := c.LaunchVM(LaunchSpec{
				Name: "extra", Size: size, MinSize: size.Scale(0.2),
				Priority: vm.LowPriority, AppKind: "elastic",
			})
			if err != nil {
				return false
			}
			return newVM.Allocation() == size && c.Host().Allocated().Fits(capacity)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("split %v: %v", split, err)
		}
	}
}
