package cluster

import (
	"fmt"
	"testing"

	"deflation/internal/cascade"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// newCrashableCluster builds a manager over crash-stop-capable servers and
// returns both so tests can flip nodes down.
func newCrashableCluster(t *testing.T, n int, policy PlacementPolicy) (*Manager, []*crashableNode) {
	t.Helper()
	nodes := make([]*crashableNode, n)
	servers := make([]Node, n)
	for i := range servers {
		h, err := hypervisor.NewHost(hypervisor.Config{
			Name:     fmt.Sprintf("s%d", i),
			Capacity: restypes.V(16, 65536, 400, 400),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = newCrashableNode(NewLocalController(h, cascade.AllLevels(), ModeDeflation))
		servers[i] = nodes[i]
	}
	m, err := NewManager(servers, policy, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m, nodes
}

// probeUntilDead runs heartbeat rounds up to the miss threshold and returns
// the events of the round that crossed it.
func probeUntilDead(t *testing.T, m *Manager) []HealthEvent {
	t.Helper()
	for i := 0; i < m.healthPolicy.MaxMisses-1; i++ {
		if evs := m.ProbeHealth(); len(evs) != 0 {
			t.Fatalf("round %d below threshold produced events: %v", i, evs)
		}
	}
	return m.ProbeHealth()
}

func TestHeartbeatDetectsCrashAndReplacesVMs(t *testing.T) {
	m, nodes := newCrashableCluster(t, 3, BestFit)
	for i := 0; i < 6; i++ {
		if _, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	// Find a server actually hosting VMs and crash it.
	victim := -1
	hosted := map[int]int{}
	for _, idx := range m.placement {
		hosted[idx]++
	}
	for idx, n := range hosted {
		if n > 0 {
			victim = idx
			break
		}
	}
	if victim < 0 {
		t.Fatal("no server hosts a VM")
	}
	dead := nodes[victim].crash()
	if len(dead) != hosted[victim] {
		t.Fatalf("crash killed %d VMs, server hosted %d", len(dead), hosted[victim])
	}

	events := probeUntilDead(t, m)
	var downs, evicted, replaced int
	for _, ev := range events {
		switch ev.Kind {
		case NodeDown:
			downs++
			if ev.Node != nodes[victim].Name() {
				t.Errorf("NodeDown for %s, want %s", ev.Node, nodes[victim].Name())
			}
		case VMEvicted:
			evicted++
		case VMReplaced:
			replaced++
		case VMLost:
			t.Errorf("VM lost with two healthy servers spare: %+v", ev)
		}
	}
	if downs != 1 || evicted != len(dead) || replaced != len(dead) {
		t.Fatalf("events: %d down, %d evicted, %d replaced; want 1/%d/%d (%v)",
			downs, evicted, replaced, len(dead), len(dead), events)
	}
	if m.DeadServers() != 1 {
		t.Errorf("DeadServers = %d, want 1", m.DeadServers())
	}
	if m.FailurePreemptions() != len(dead) {
		t.Errorf("FailurePreemptions = %d, want %d", m.FailurePreemptions(), len(dead))
	}
	// Every evicted VM landed on a healthy server and is still placed.
	for _, name := range dead {
		if !m.Placed(name) {
			t.Errorf("VM %s not re-placed", name)
		}
		if idx := m.placement[name]; idx == victim {
			t.Errorf("VM %s re-placed on the dead server", name)
		}
	}
	st := m.Snapshot()
	if st.DeadServers != 1 || st.FailurePreemptions != len(dead) || st.ReplacedVMs != len(dead) || st.LostVMs != 0 {
		t.Errorf("stats: %+v", st)
	}

	// New launches skip the dead server.
	idx, _, err := m.Launch(spec("post-crash", vm.LowPriority, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if idx == victim {
		t.Error("new VM placed on dead server")
	}
}

func TestMissesBelowThresholdThenRecoveryResets(t *testing.T) {
	m, nodes := newCrashableCluster(t, 2, BestFit)
	if _, _, err := m.Launch(spec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	nodes[0].crash()
	nodes[1].crash()
	// Two misses — one short of the default threshold of three.
	for i := 0; i < 2; i++ {
		if evs := m.ProbeHealth(); len(evs) != 0 {
			t.Fatalf("premature events: %v", evs)
		}
	}
	nodes[0].recover()
	nodes[1].recover()
	// The blip healed: the miss counters reset and nothing was evacuated.
	if evs := m.ProbeHealth(); len(evs) != 0 {
		t.Fatalf("events after recovery: %v", evs)
	}
	if m.DeadServers() != 0 || m.FailurePreemptions() != 0 {
		t.Errorf("detector state after blip: %d dead, %d preemptions",
			m.DeadServers(), m.FailurePreemptions())
	}
}

func TestDeadNodeRejoinsEmpty(t *testing.T) {
	m, nodes := newCrashableCluster(t, 2, FirstFit)
	if _, _, err := m.Launch(spec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	nodes[0].crash()
	probeUntilDead(t, m)
	if m.DeadServers() != 1 {
		t.Fatalf("DeadServers = %d after crash", m.DeadServers())
	}

	nodes[0].recover()
	evs := m.ProbeHealth()
	if len(evs) != 1 || evs[0].Kind != NodeUp || evs[0].Node != nodes[0].Name() {
		t.Fatalf("rejoin events: %v", evs)
	}
	if m.DeadServers() != 0 {
		t.Errorf("DeadServers = %d after rejoin", m.DeadServers())
	}
	// The rejoined node is empty and back in the placement pool: first-fit
	// puts the next VM on it.
	idx, _, err := m.Launch(spec("b", vm.LowPriority, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Errorf("post-rejoin placement on server %d, want 0", idx)
	}
}

func TestEvictedVMsLostWhenClusterFull(t *testing.T) {
	m, nodes := newCrashableCluster(t, 2, BestFit)
	// Fill both servers with undeflatable VMs (min = nominal).
	for i := 0; i < 8; i++ {
		if _, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	dead := nodes[0].crash()
	if len(dead) == 0 {
		t.Fatal("crashed server hosted nothing")
	}
	events := probeUntilDead(t, m)
	var lost int
	for _, ev := range events {
		if ev.Kind == VMLost {
			lost++
		}
		if ev.Kind == VMReplaced {
			t.Errorf("VM replaced with no spare capacity: %+v", ev)
		}
	}
	if lost != len(dead) {
		t.Errorf("lost = %d, want %d", lost, len(dead))
	}
	st := m.Snapshot()
	if st.LostVMs != len(dead) || st.ReplacedVMs != 0 {
		t.Errorf("stats: %+v", st)
	}
	for _, name := range dead {
		if m.Placed(name) {
			t.Errorf("lost VM %s still placed", name)
		}
	}
	// Losing VMs to failures is not a user-facing admission rejection.
	if m.Rejected() != 0 {
		t.Errorf("Rejected = %d after failure losses, want 0", m.Rejected())
	}
}
