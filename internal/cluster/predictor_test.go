package cluster

import (
	"testing"
	"time"

	"deflation/internal/restypes"
)

func TestForecasterValidation(t *testing.T) {
	if _, err := NewForecaster(0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewForecaster(1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

func TestForecasterConvergesToRate(t *testing.T) {
	f, err := NewForecaster(0.3)
	if err != nil {
		t.Fatal(err)
	}
	// One 4-core VM every 10 seconds → 0.4 cores/s.
	size := restypes.V(4, 16384, 100, 100)
	for i := 1; i <= 100; i++ {
		f.Observe(time.Duration(i)*10*time.Second, size)
	}
	rate := f.Rate()
	if rate.CPU < 0.35 || rate.CPU > 0.45 {
		t.Errorf("rate = %g cores/s, want ≈0.4", rate.CPU)
	}
	// Forecast over a minute: ≈24 cores.
	fc := f.Forecast(time.Minute)
	if fc.CPU < 20 || fc.CPU > 28 {
		t.Errorf("forecast = %g cores, want ≈24", fc.CPU)
	}
}

func TestForecasterBurstHandling(t *testing.T) {
	f, err := NewForecaster(0.5)
	if err != nil {
		t.Fatal(err)
	}
	size := restypes.V(2, 4096, 50, 50)
	// Simultaneous arrivals must raise, not break, the rate.
	f.Observe(time.Minute, size)
	f.Observe(time.Minute, size)
	f.Observe(time.Minute, size)
	if f.Rate().CPU <= 0 {
		t.Errorf("burst rate = %g", f.Rate().CPU)
	}
}

func TestProactiveReclaimFreesForecastDemand(t *testing.T) {
	c := newServer(t, ModeDeflation)
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, _, err := c.LaunchVM(spec(n, 0, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Free().IsZero() {
		t.Fatal("server not full")
	}
	want := restypes.V(4, 16384, 100, 100)
	touched := proactiveReclaim([]*LocalController{c}, want)
	if touched != 1 {
		t.Errorf("touched = %d servers", touched)
	}
	if !want.Fits(c.Free()) {
		t.Errorf("free after proactive reclaim = %v, want ≥ %v", c.Free(), want)
	}
	// A subsequent high-priority launch pays no reclamation latency.
	_, rep, err := c.LaunchVM(spec("hi", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReclaimLatency != 0 || len(rep.Deflated) != 0 {
		t.Errorf("reactive work remained: %+v", rep)
	}
}

func TestProactiveReclaimNoopWhenFree(t *testing.T) {
	c := newServer(t, ModeDeflation)
	if touched := proactiveReclaim([]*LocalController{c}, restypes.V(4, 16384, 100, 100)); touched != 0 {
		t.Errorf("touched = %d on an empty server", touched)
	}
}

func TestSimProactiveReducesPlacementLatency(t *testing.T) {
	reactive, err := RunSim(smallSim(ModeDeflation, 1.8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallSim(ModeDeflation, 1.8)
	cfg.ProactiveHorizon = 2 * time.Minute
	proactive, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if proactive.ProactiveReclaims == 0 {
		t.Fatal("proactive mode never pre-deflated")
	}
	if proactive.LatentPlacements >= reactive.LatentPlacements {
		t.Errorf("latent placements %d not below reactive %d",
			proactive.LatentPlacements, reactive.LatentPlacements)
	}
}
