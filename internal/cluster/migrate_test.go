package cluster

import (
	"errors"
	"fmt"
	"testing"

	"deflation/internal/cascade"
	"deflation/internal/faults"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// newMigCluster builds a FirstFit cluster with a generous NIC so migration
// streams get the full link, and FirstFit placement so tests control where
// VMs land (earlier servers fill first).
func newMigCluster(t *testing.T, n int) *Manager {
	t.Helper()
	servers := make([]Node, n)
	for i := range servers {
		h, err := hypervisor.NewHost(hypervisor.Config{
			Name:     fmt.Sprintf("s%d", i),
			Capacity: restypes.V(16, 65536, 800, 4000),
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = NewLocalController(h, cascade.AllLevels(), ModeDeflation)
	}
	m, err := NewManager(servers, FirstFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// totalAllocated sums every placed VM's physical allocation cluster-wide.
func totalAllocated(t *testing.T, m *Manager) restypes.Vector {
	t.Helper()
	var sum restypes.Vector
	for _, s := range m.Servers() {
		inv, err := nodeInventory(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, vs := range inv {
			sum = sum.Add(vs.Allocation)
		}
	}
	return sum
}

func TestMigrateMovesVMAndConservesAllocation(t *testing.T) {
	m := newMigCluster(t, 2)
	for i := 0; i < 3; i++ {
		if _, _, err := m.Launch(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	before := totalAllocated(t, m)

	rep, err := m.Migrate("v0", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != "s0" || rep.To != "s1" {
		t.Errorf("report route %s→%s, want s0→s1", rep.From, rep.To)
	}
	if !rep.Result.Converged || rep.Result.TransferredMB <= 0 || rep.Result.Downtime <= 0 {
		t.Errorf("implausible migration result: %+v", rep.Result)
	}
	if has, _ := m.Servers()[0].Has("v0"); has {
		t.Error("v0 still on source after migration")
	}
	if has, _ := m.Servers()[1].Has("v0"); !has {
		t.Error("v0 not on destination after migration")
	}
	if !m.Placed("v0") {
		t.Error("migrated VM no longer placed")
	}

	// Conservation: a completed migration moves allocation, never creates or
	// destroys it.
	if after := totalAllocated(t, m); after != before {
		t.Errorf("allocation not conserved:\nbefore %+v\nafter  %+v", before, after)
	}
	st := m.MigrationStats()
	if st.Migrations != 1 || st.Failures != 0 || st.MigratedMB != rep.Result.TransferredMB {
		t.Errorf("stats: %+v", st)
	}

	// The VM can keep living its lifecycle on the destination.
	if err := m.Release("v0"); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateValidation(t *testing.T) {
	m := newMigCluster(t, 2)
	if _, _, err := m.Launch(spec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Migrate("ghost", "s1"); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("unknown VM err = %v", err)
	}
	if _, err := m.Migrate("a", "nowhere"); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("unknown node err = %v", err)
	}
	if _, err := m.Migrate("a", "s0"); !errors.Is(err, ErrMigrationFailed) {
		t.Errorf("same-node err = %v", err)
	}
}

func TestMigrationFaultRollsBackToSource(t *testing.T) {
	m := newMigCluster(t, 2)
	if _, _, err := m.Launch(spec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	m.SetMigrationFaults(faults.New(faults.Config{MigrationFailProb: 1, Seed: 3}))
	before := totalAllocated(t, m)

	if _, err := m.Migrate("a", "s1"); !errors.Is(err, ErrMigrationFailed) {
		t.Fatalf("err = %v, want ErrMigrationFailed", err)
	}
	// Rollback: the VM never left its source, nothing landed on the
	// destination, and stream reservations were released.
	if has, _ := m.Servers()[0].Has("a"); !has {
		t.Error("VM lost from source after failed migration")
	}
	if has, _ := m.Servers()[1].Has("a"); has {
		t.Error("VM leaked onto destination after failed migration")
	}
	if !m.Placed("a") {
		t.Error("placement lost after failed migration")
	}
	if after := totalAllocated(t, m); after != before {
		t.Errorf("allocation changed by failed migration:\nbefore %+v\nafter  %+v", before, after)
	}
	for i, s := range m.Servers() {
		if r := s.(*LocalController).host.Reserved(); !r.IsZero() {
			t.Errorf("server %d still holds stream reservation %+v", i, r)
		}
	}
	if st := m.MigrationStats(); st.Migrations != 0 || st.Failures != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestMigrationOnlyFallbackMigratesInsteadOfPreempting(t *testing.T) {
	// s0 holds four undeflatable lows (full); s1 holds one. A full-server
	// high-priority arrival fits nowhere. Under ReclaimMigrationOnly the
	// manager migrates s0's lows to s1 until s1 is full, then — as the last
	// resort — preempts the remainder. Net effect: most victims keep
	// running, strictly fewer preemptions than preempt-only.
	launchAll := func(m *Manager) {
		for i := 0; i < 4; i++ {
			if _, _, err := m.Launch(spec(fmt.Sprintf("a%d", i), vm.LowPriority, 1.0)); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := m.Launch(spec("b0", vm.LowPriority, 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	hi := LaunchSpec{
		Name: "hi", Size: restypes.V(16, 65536, 100, 100), Priority: vm.HighPriority,
		NewApp: spec("hi", vm.HighPriority, 0).NewApp,
	}

	base := newMigCluster(t, 2)
	launchAll(base)
	_, baseRep, err := base.Launch(hi)
	if err != nil {
		t.Fatal(err)
	}

	mig := newMigCluster(t, 2)
	mig.SetReclaimPolicy(ReclaimMigrationOnly)
	launchAll(mig)
	_, migRep, err := mig.Launch(hi)
	if err != nil {
		t.Fatal(err)
	}

	st := mig.MigrationStats()
	if st.Migrations == 0 {
		t.Fatal("migration-only policy performed no migrations")
	}
	if len(migRep.Preempted) >= len(baseRep.Preempted) {
		t.Errorf("migration-only preempted %d, preempt-only %d — migration saved nothing",
			len(migRep.Preempted), len(baseRep.Preempted))
	}
	if got := mig.Preemptions() + st.Migrations; got != len(baseRep.Preempted) {
		t.Errorf("victims: %d preempted + %d migrated != %d displaced under preempt-only",
			mig.Preemptions(), st.Migrations, len(baseRep.Preempted))
	}
}

func TestDeflateThenMigrateMovesFewerBytes(t *testing.T) {
	// Drain the same one-VM node under migration-only and under
	// deflate-then-migrate: the deflated VM must transfer fewer bytes and
	// pause for less downtime (smaller resident set, lower dirty rate).
	drain := func(policy ReclaimPolicy) MigrationReport {
		m := newMigCluster(t, 2)
		m.SetReclaimPolicy(policy)
		if _, _, err := m.Launch(spec("a", vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
		moved, failed, err := m.Drain("s0")
		if err != nil {
			t.Fatal(err)
		}
		if len(moved) != 1 || len(failed) != 0 {
			t.Fatalf("drain: moved %d, failed %d", len(moved), len(failed))
		}
		if has, _ := m.Servers()[1].Has("a"); !has {
			t.Fatal("drained VM not on destination")
		}
		return moved[0]
	}
	plain := drain(ReclaimMigrationOnly)
	deflated := drain(ReclaimDeflateThenMigrate)
	if deflated.Result.TransferredMB >= plain.Result.TransferredMB {
		t.Errorf("deflate-then-migrate moved %.0f MB, migration-only %.0f MB",
			deflated.Result.TransferredMB, plain.Result.TransferredMB)
	}
	if deflated.Result.Downtime >= plain.Result.Downtime {
		t.Errorf("deflate-then-migrate downtime %v, migration-only %v",
			deflated.Result.Downtime, plain.Result.Downtime)
	}
}

func TestReserveStreamThrottlesAndRestores(t *testing.T) {
	c := newServer(t, ModeDeflation) // capacity 400 net; each VM takes 100
	for i := 0; i < 4; i++ {
		if _, _, err := c.LaunchVM(spec(fmt.Sprintf("v%d", i), vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	// NIC fully allocated: the stream can only get throttled low-priority
	// bandwidth, at most half of each VM's 100 MB/s.
	granted, err := c.ReserveStream("migrate:x", 1250)
	if err != nil {
		t.Fatal(err)
	}
	if granted <= 0 || granted > 200 {
		t.Errorf("granted %.0f MB/s, want (0, 200]", granted)
	}
	for _, v := range c.VMs() {
		if net := v.Allocation().NetMBps; net >= 100 {
			t.Errorf("%s network allocation %.0f not throttled", v.Name(), net)
		}
	}
	// Idempotent: re-reserving the same stream returns the same grant
	// without throttling further.
	again, err := c.ReserveStream("migrate:x", 1250)
	if err != nil || again != granted {
		t.Errorf("re-reserve = %.0f, %v; want %.0f, nil", again, err, granted)
	}
	if err := c.ReleaseStream("migrate:x"); err != nil {
		t.Fatal(err)
	}
	for _, v := range c.VMs() {
		if net := v.Allocation().NetMBps; net != 100 {
			t.Errorf("%s network allocation %.0f not restored", v.Name(), net)
		}
	}
	if !c.host.Reserved().IsZero() {
		t.Errorf("reservation leaked: %+v", c.host.Reserved())
	}
	// Releasing an unknown stream is a no-op.
	if err := c.ReleaseStream("migrate:ghost"); err != nil {
		t.Errorf("unknown release err = %v", err)
	}
}

func TestCheckpointRestoreRejectsBadInputs(t *testing.T) {
	c := newServer(t, ModeDeflation)
	if _, _, err := c.LaunchVM(spec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint("ghost"); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("checkpoint ghost err = %v", err)
	}
	cp, err := c.Checkpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if cp.TransferSetMB <= 0 || cp.DirtyRateMBps <= 0 {
		t.Errorf("checkpoint rates: %+v", cp)
	}
	// Restoring onto a server that already runs the VM must conflict.
	if err := c.RestoreVM(cp); !errors.Is(err, ErrVMExists) {
		t.Errorf("duplicate restore err = %v", err)
	}
	if _, err := c.DeflateFully("ghost"); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("deflate-fully ghost err = %v", err)
	}
}
