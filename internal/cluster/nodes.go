package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// This file is dynamic fleet membership: agents register themselves with a
// running manager (POST /v1/nodes) instead of being listed on the command
// line, the registration is journaled (node-add) so recovery and
// cross-shard adoption re-dial the same fleet, and agents heartbeat their
// owning manager (POST /v1/nodes/{name}/heartbeat) — a 404 tells an agent
// its shard assignment moved and it must re-resolve the shard map.

// AddNode registers a node with the running manager and journals the
// registration. Registration is idempotent: re-announcing the same
// name+URL is a no-op, and a changed URL (agent restarted elsewhere)
// replaces the client and re-journals. A node that arrives with VMs
// already running — re-registration with an adopting manager — has its
// inventory reconciled into the placement rather than being assumed
// empty. Returns the reconciliation events, if any.
func (m *Manager) AddNode(n Node, url string) ([]HealthEvent, error) {
	name := n.Name()
	if name == "" {
		return nil, fmt.Errorf("cluster: cannot register a node without a name")
	}
	// Dynamic fleets forgo the placement index: registration can replace a
	// node object mid-flight (stranding its watcher) and removal renumbers
	// indices, so these managers stay on the linear scans.
	m.pidx = nil
	if idx := m.serverIndex(name); idx >= 0 {
		var events []HealthEvent
		if m.nodeURLs[name] != url {
			m.servers[idx] = n
			m.nodeURLs[name] = url
			m.propagateTerm(n)
			m.record(Event{Kind: evNodeAdd, Node: name, URL: url})
		}
		if m.health[idx].dead {
			// The failure detector had written it off; a registration is
			// proof of life, and its inventory is ground truth.
			m.health[idx] = nodeHealth{}
			events = append(events, HealthEvent{Kind: NodeUp, Node: name})
			m.record(Event{Kind: evNodeUp, Node: name})
			if m.tel != nil {
				m.tel.nodeUp.Inc()
			}
			events = append(events, m.reconcileNode(idx)...)
		}
		return events, nil
	}
	m.servers = append(m.servers, n)
	m.health = append(m.health, nodeHealth{})
	m.nodeURLs[name] = url
	m.propagateTerm(n)
	if m.tel != nil {
		m.tel.addNode(name)
	}
	m.record(Event{Kind: evNodeAdd, Node: name, URL: url})
	// The node may arrive with VMs already running (an agent that outlived
	// its manager, now registering with the adopter): fold its inventory in.
	return m.reconcileNode(len(m.servers) - 1), nil
}

// RemoveNode hands a node off: the manager forgets the node and every
// placement on it WITHOUT releasing anything — the node and its VMs live
// on under whichever manager now owns them (cross-shard rebalance). The
// hand-off journals as a single node-remove event.
func (m *Manager) RemoveNode(name string) error {
	idx := m.serverIndex(name)
	if idx < 0 {
		return fmt.Errorf("%w: %q", ErrNodeNotFound, name)
	}
	m.pidx = nil // see AddNode: dynamic fleets use the linear scans
	for vmName, i := range m.placement {
		switch {
		case i == idx:
			delete(m.placement, vmName)
			delete(m.specs, vmName)
		case i > idx:
			m.placement[vmName] = i - 1
		}
	}
	m.servers = append(m.servers[:idx], m.servers[idx+1:]...)
	m.health = append(m.health[:idx], m.health[idx+1:]...)
	delete(m.nodeURLs, name)
	if m.tel != nil {
		m.tel.removeNode(idx)
	}
	m.record(Event{Kind: evNodeRemove, Node: name})
	return nil
}

// HasNode reports whether the manager currently manages the named node.
func (m *Manager) HasNode(name string) bool { return m.serverIndex(name) >= 0 }

// NodeURLs returns the dynamically registered agents (name → control
// endpoint), a copy. Statically configured servers are not included.
func (m *Manager) NodeURLs() map[string]string {
	out := make(map[string]string, len(m.nodeURLs))
	for name, url := range m.nodeURLs {
		out[name] = url
	}
	return out
}

// propagateTerm stamps the manager's current fencing term onto a node
// client that understands it, mirroring what SetEpoch/SetIdentity do for
// the whole fleet.
func (m *Manager) propagateTerm(n Node) {
	if m.id != "" {
		if is, ok := n.(interface{ SetLeaderID(string) }); ok {
			is.SetLeaderID(m.id)
		}
	}
	if m.epoch > 0 {
		if es, ok := n.(interface{ SetEpoch(uint64) }); ok {
			es.SetEpoch(m.epoch)
		}
	}
}

// AdoptJournal is the cross-shard takeover entry point: a peer manager
// rebuilds a dead shard from its journal and assumes leadership over its
// fleet. Recover replays the dead manager's WAL (re-dialing its
// registered agents via cfg.DialNode) and anti-entropy reconciles against
// their live inventories — all unfenced (epoch 0 RPCs are always
// admitted), so reconciliation is not refused while the agents' guards
// still hold the dead leader's term. BecomeLeader then bumps strictly
// past both the journaled epoch and the cluster-wide fenced maximum, and
// the fencing sweep raises every reachable agent's guard — from that
// moment a merely-partitioned (not actually dead) leader finds every
// command it issues refused. cfg.LeaderID must be the ADOPTER's identity,
// never the dead manager's: identity is what breaks same-epoch ties if
// the dead leader resurrects and self-allocates the same term.
func AdoptJournal(cfg DurabilityConfig, servers []Node, policy PlacementPolicy, seed int64) (*Manager, *RecoveryReport, error) {
	m, rep, err := Recover(cfg, servers, policy, seed)
	if err != nil {
		return nil, nil, err
	}
	m.BecomeLeader()
	m.fenceAll()
	return m, rep, nil
}

// NodeDialer builds a Node client for a registering agent. ManagerAPI's
// default dials a RemoteNode without probing it; tests substitute
// in-process fakes.
type NodeDialer func(name, url string) (Node, error)

// RegisterNodeRequest announces an agent to its owning manager.
type RegisterNodeRequest struct {
	// Name is the agent's server name. Optional: when empty the manager
	// probes the URL's /v1/state for it (one extra round trip).
	Name string `json:"name,omitempty"`
	// URL is the agent's control endpoint, e.g. http://10.0.0.7:7070.
	URL string `json:"url"`
}

// RegisterNodeResponse acknowledges a durably journaled registration.
type RegisterNodeResponse struct {
	Name string `json:"name"`
	// Epoch is the manager's current leadership term, so freshly registered
	// agents learn the fence without waiting for the first command.
	Epoch uint64 `json:"epoch,omitempty"`
}

// NodeListResponse is the manager's registered-fleet view.
type NodeListResponse struct {
	Nodes map[string]string `json:"nodes"` // name → URL ("" = static)
	// LastHeartbeat is seconds since each node's last push heartbeat
	// (absent for nodes that have never heartbeated).
	LastHeartbeat map[string]float64 `json:"last_heartbeat_seconds,omitempty"`
}

// nodeAPIState is ManagerAPI's dynamic-membership state, guarded by the
// API mutex like everything else.
type nodeAPIState struct {
	dial       NodeDialer
	heartbeats map[string]time.Time
	hbMu       sync.Mutex // heartbeats are hot-path; keep them off the API lock
}

// SetNodeDialer overrides how registering agents are dialed (tests,
// in-process federations). The default dials RemoteNodes.
func (a *ManagerAPI) SetNodeDialer(d NodeDialer) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nodes.dial = d
}

func (a *ManagerAPI) dialNode(name, url string) (Node, error) {
	if a.nodes.dial != nil {
		return a.nodes.dial(name, url)
	}
	if name != "" {
		return NewRemoteNodeNamed(name, url, RetryPolicy{}), nil
	}
	return NewRemoteNode(url)
}

// handleRegisterNode admits an agent into the fleet. The 201/200 response
// is sent only after the node-add record is durably journaled — an
// acknowledged registration survives any crash of this manager (or is
// re-learned by the peer that adopts its journal).
func (a *ManagerAPI) handleRegisterNode(w http.ResponseWriter, r *http.Request) {
	var req RegisterNodeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "cluster: bad node registration: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.URL == "" {
		http.Error(w, "cluster: node registration needs a url", http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	if a.refuseUnservable(w) {
		a.mu.Unlock()
		return
	}
	known := req.Name != "" && a.mgr.HasNode(req.Name) && a.mgr.NodeURLs()[req.Name] == req.URL
	a.mu.Unlock()

	// Dial outside the lock: the probe path (no name given) does a round
	// trip to the agent.
	var (
		n   Node
		err error
	)
	if !known {
		if n, err = a.dialNode(req.Name, req.URL); err != nil {
			http.Error(w, "cluster: dialing node: "+err.Error(), http.StatusBadGateway)
			return
		}
	}

	a.mu.Lock()
	if a.refuseUnservable(w) {
		a.mu.Unlock()
		return
	}
	status := http.StatusOK
	name := req.Name
	if !known {
		name = n.Name()
		if !a.mgr.HasNode(name) {
			status = http.StatusCreated
		}
		if _, err = a.mgr.AddNode(n, req.URL); err != nil {
			a.mu.Unlock()
			writeError(w, err)
			return
		}
	}
	walErr := a.mgr.WALError()
	epoch := a.mgr.Epoch()
	a.mu.Unlock()
	if walErr != nil {
		http.Error(w, "cluster: journal write failed; registration not durably recorded: "+walErr.Error(),
			http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, status, RegisterNodeResponse{Name: name, Epoch: epoch})
}

// handleListNodes reports the registered fleet and heartbeat freshness.
func (a *ManagerAPI) handleListNodes(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	resp := NodeListResponse{Nodes: a.mgr.NodeURLs()}
	for _, s := range a.mgr.Servers() {
		if _, ok := resp.Nodes[s.Name()]; !ok {
			resp.Nodes[s.Name()] = "" // static fleet member
		}
	}
	a.mu.Unlock()
	a.nodes.hbMu.Lock()
	now := time.Now()
	for name, t := range a.nodes.heartbeats {
		if _, ok := resp.Nodes[name]; ok {
			if resp.LastHeartbeat == nil {
				resp.LastHeartbeat = make(map[string]float64)
			}
			resp.LastHeartbeat[name] = now.Sub(t).Seconds()
		}
	}
	a.nodes.hbMu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// handleForgetNode hands a node off (DELETE /v1/nodes/{name}): the
// manager forgets the node and its placements without releasing anything.
// Cross-shard reconciliation calls this on the NON-owner after
// re-registering the node with its ring owner.
func (a *ManagerAPI) handleForgetNode(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	if a.refuseUnservable(w) {
		a.mu.Unlock()
		return
	}
	err := a.mgr.RemoveNode(r.PathValue("name"))
	walErr := a.mgr.WALError()
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	if walErr != nil {
		http.Error(w, "cluster: journal write failed; hand-off not durably recorded: "+walErr.Error(),
			http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleNodeHeartbeat receives an agent's push heartbeat. 204 when this
// manager owns the node; 404 when it does not — the agent's cue to
// re-resolve the shard map and re-register with the current owner. The
// push channel complements (does not replace) the manager's pull-based
// failure detector: liveness decisions stay with ProbeHealth.
func (a *ManagerAPI) handleNodeHeartbeat(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	a.mu.Lock()
	owned := a.mgr.HasNode(name)
	hbTel := a.hbTel
	a.mu.Unlock()
	if !owned {
		http.Error(w, fmt.Sprintf("cluster: node %q is not managed here", name), http.StatusNotFound)
		return
	}
	a.nodes.hbMu.Lock()
	if a.nodes.heartbeats == nil {
		a.nodes.heartbeats = make(map[string]time.Time)
	}
	a.nodes.heartbeats[name] = time.Now()
	a.nodes.hbMu.Unlock()
	if hbTel != nil {
		hbTel.Inc()
	}
	w.WriteHeader(http.StatusNoContent)
}
