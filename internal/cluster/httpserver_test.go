package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestNewHTTPServerSetsProtectiveTimeouts pins the contract that every
// daemon listener built through NewHTTPServer carries the slow-loris
// protections. A zero field here means a regression to unbounded reads.
func TestNewHTTPServerSetsProtectiveTimeouts(t *testing.T) {
	srv := NewHTTPServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", srv.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if srv.ReadTimeout != DefaultReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", srv.ReadTimeout, DefaultReadTimeout)
	}
	if srv.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", srv.IdleTimeout, DefaultIdleTimeout)
	}
}

// TestSlowLorisConnectionsAreReaped is the behavioral regression test: a
// client that opens a connection and never finishes its request headers
// must be cut off by ReadHeaderTimeout, and ordinary requests must keep
// flowing while the loris connections are still pending.
func TestSlowLorisConnectionsAreReaped(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out ReadHeaderTimeout")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ping", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "pong")
	})
	srv := NewHTTPServer("", mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Open several loris connections: partial request line, then silence.
	var lorises []net.Conn
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := io.WriteString(c, "GET /ping HTTP/1.1\r\nHost: loris\r\nX-Trickle: "); err != nil {
			t.Fatal(err)
		}
		lorises = append(lorises, c)
	}

	// The control plane must stay responsive while the lorises dangle.
	resp, err := http.Get(base + "/ping")
	if err != nil {
		t.Fatalf("healthy request starved by slow-loris connections: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/ping = %s while lorises pending", resp.Status)
	}

	// Each loris must be severed within ReadHeaderTimeout (+scheduling
	// slack): the read below returns EOF/ECONNRESET once the server hangs
	// up. An unprotected server would hold these sockets forever.
	deadline := DefaultReadHeaderTimeout + 3*time.Second
	for i, c := range lorises {
		c.SetReadDeadline(time.Now().Add(deadline))
		if _, err := bufio.NewReader(c).ReadByte(); err == nil {
			// A 408 response body is also an acceptable severance signal,
			// but then the connection must still close promptly.
			if _, err := io.Copy(io.Discard, c); err == nil {
				continue
			}
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("loris %d still connected %v after partial headers", i, deadline)
		}
	}
}

// TestReadTimeoutBoundsTrickledBodies covers the second loris variant: the
// headers arrive promptly but the declared body trickles in forever.
// ReadTimeout must sever the request instead of pinning the handler.
func TestReadTimeoutBoundsTrickledBodies(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out a shortened ReadTimeout")
	}
	handled := make(chan error, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/vms", func(w http.ResponseWriter, r *http.Request) {
		_, err := io.Copy(io.Discard, r.Body)
		handled <- err
	})
	srv := NewHTTPServer("", mux)
	// The production ReadTimeout is 30s — too long for a test loop. Tighten
	// it while keeping the NewHTTPServer-built server, so the test exercises
	// the same field the constructor guarantees is set.
	srv.ReadTimeout = time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "POST /v1/vms HTTP/1.1\r\nHost: loris\r\nContent-Length: 1000000\r\n\r\ntrickle")
	select {
	case err := <-handled:
		if err == nil {
			t.Fatal("handler read a full body that was never sent")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("trickled body pinned the handler past ReadTimeout")
	}
}
