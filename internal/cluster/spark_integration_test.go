package cluster

import (
	"fmt"
	"testing"

	"deflation/internal/cascade"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/spark"
	"deflation/internal/spark/workloads"
	"deflation/internal/vm"
)

// TestSparkMasterIntegration exercises the paper's full §4.1 control flow
// end to end: a Spark job runs on worker VMs managed by a local deflation
// controller; a high-priority VM arrives mid-job; the controller's
// proportional cascade deflation hits every worker VM; each worker's
// deflation agent relays the request to the Spark master; the master runs
// the running-time-minimizing policy at the next stage boundary.
func TestSparkMasterIntegration(t *testing.T) {
	const workers = 8

	// Host big enough for 8 × (4c, 16 GB) workers with no slack beyond 25%.
	host, err := hypervisor.NewHost(hypervisor.Config{
		Name:     "spark-host",
		Capacity: restypes.V(40, 163840, 8000, 16000),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewLocalController(host, cascade.AllLevels(), ModeDeflation)

	// The Spark side: ALS (shuffle-heavy → the policy should stay VM-level).
	p := workloads.Params{Workers: workers}
	sparkCluster, err := p.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	job, err := workloads.ALS(p)
	if err != nil {
		t.Fatal(err)
	}
	master, err := spark.NewMaster(sparkCluster, job, spark.EstimatorHeuristic)
	if err != nil {
		t.Fatal(err)
	}

	// One worker VM per executor, each running the worker deflation agent.
	size := restypes.V(4, 16384, 400, 1250)
	for i := 0; i < workers; i++ {
		i := i
		_, _, err := ctrl.LaunchVM(LaunchSpec{
			Name: fmt.Sprintf("spark-%d", i), Size: size,
			MinSize: size.Scale(0.25), Priority: vm.LowPriority, Warm: true,
			NewApp: func(sz restypes.Vector) vm.Application {
				w, err := spark.NewWorkerApp(master, i, sz)
				if err != nil {
					t.Fatal(err)
				}
				return w
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Baseline runtime for normalization.
	baseCluster, _ := p.Cluster()
	baseJob, _ := workloads.ALS(p)
	base, err := spark.RunBatchScenario(baseCluster, baseJob, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Mid-job, a high-priority VM arrives and the controller deflates the
	// workers proportionally (the workers' agents relay to the master).
	pressured := false
	var launchRep LaunchReport
	res, err := master.Run(func(progress float64, _ *spark.Engine) {
		if pressured || progress < 0.5 || progress >= 1 {
			return
		}
		pressured = true
		_, rep, err := ctrl.LaunchVM(LaunchSpec{
			Name: "prod-db", Size: restypes.V(16, 65536, 1600, 5000),
			Priority: vm.HighPriority, AppKind: "inelastic",
		})
		if err != nil {
			t.Fatalf("high-priority launch: %v", err)
		}
		launchRep = rep
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pressured {
		t.Fatal("pressure never fired")
	}

	// The controller deflated every worker (proportional policy), none
	// were preempted.
	if len(launchRep.Deflated) != workers {
		t.Errorf("deflated %d VMs, want all %d", len(launchRep.Deflated), workers)
	}
	if len(launchRep.Preempted) != 0 {
		t.Errorf("preempted %v, want none", launchRep.Preempted)
	}

	// The master saw the wave and made exactly one decision: VM-level for
	// the shuffle-heavy job.
	decs := master.Decisions()
	if len(decs) != 1 {
		t.Fatalf("decisions = %d, want 1", len(decs))
	}
	if decs[0].Mechanism != spark.MechVMLevel {
		t.Errorf("policy chose %v for ALS, want vm-level (TVM=%.2f TSelf=%.2f)",
			decs[0].Mechanism, decs[0].TVM, decs[0].TSelf)
	}

	// All executors still scheduled (no blacklisting), but running slower.
	alive := master.Engine()
	_ = alive
	slowed := 0
	for _, x := range sparkCluster.Executors() {
		if !x.Alive() {
			t.Errorf("executor %s blacklisted under VM-level deflation", x.ID)
		}
		if x.Speed < 0.99 {
			slowed++
		}
	}
	if slowed != workers {
		t.Errorf("slowed executors = %d, want all %d", slowed, workers)
	}

	// The job finished, slower than baseline but far better than a
	// preemption-style 2x.
	norm := res.DurationSecs / base.DurationSecs
	if norm <= 1.05 || norm > 1.9 {
		t.Errorf("normalized runtime = %.2f, want deflated-but-reasonable", norm)
	}
	if res.RecomputeSecs != 0 {
		t.Errorf("recompute = %.0fs, want 0 under VM-level", res.RecomputeSecs)
	}

	// Pressure ends: the high-priority VM departs, workers reinflate, and
	// the executors return to full speed.
	if err := ctrl.Release("prod-db"); err != nil {
		t.Fatal(err)
	}
	for _, v := range ctrl.VMs() {
		if v.Allocation() != v.Size() {
			t.Errorf("VM %s not fully reinflated: %v", v.Name(), v.Allocation())
		}
	}
	for _, x := range sparkCluster.Executors() {
		if x.Speed < 0.99 {
			t.Errorf("executor %s still slow after reinflation: %g", x.ID, x.Speed)
		}
	}
}

// TestSparkMasterChoosesSelfForMapHeavy mirrors the integration above with
// the K-means job: cheap recomputation should make the master blacklist the
// deflated executors instead.
func TestSparkMasterChoosesSelfForMapHeavy(t *testing.T) {
	const workers = 8
	p := workloads.Params{Workers: workers}
	sparkCluster, err := p.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	job, err := workloads.KMeans(p)
	if err != nil {
		t.Fatal(err)
	}
	master, err := spark.NewMaster(sparkCluster, job, spark.EstimatorHeuristic)
	if err != nil {
		t.Fatal(err)
	}

	// Skip the VM plumbing: feed a skewed deflation wave directly through
	// the agent entry point mid-run.
	fired := false
	_, err = master.Run(func(progress float64, _ *spark.Engine) {
		if fired || progress < 0.5 || progress >= 1 {
			return
		}
		fired = true
		for i := 0; i < workers; i++ {
			f := 0.45
			if i%2 == 0 {
				f = 0.55
			}
			if err := master.RequestDeflation(i, f); err != nil {
				t.Fatal(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	decs := master.Decisions()
	if len(decs) != 1 || decs[0].Mechanism != spark.MechSelf {
		t.Fatalf("decisions = %+v, want one self-deflation", decs)
	}
	// Roughly half the executors blacklisted (sum d ≈ 4).
	dead := 0
	for _, x := range sparkCluster.Executors() {
		if !x.Alive() {
			dead++
		}
	}
	if dead < 3 || dead > 5 {
		t.Errorf("blacklisted = %d, want ≈4", dead)
	}
}

func TestMasterRequestValidation(t *testing.T) {
	p := workloads.Params{Workers: 2}
	cl, _ := p.Cluster()
	job, _ := workloads.KMeans(p)
	m, err := spark.NewMaster(cl, job, spark.EstimatorHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.RequestDeflation(-1, 0.5); err == nil {
		t.Error("negative index accepted")
	}
	if err := m.RequestDeflation(0, 1.0); err == nil {
		t.Error("fraction 1 accepted")
	}
	if err := m.RequestDeflation(0, 0.5); err != nil {
		t.Error(err)
	}
	if _, err := spark.NewWorkerApp(nil, 0, restypes.V(1, 1, 1, 1)); err == nil {
		t.Error("nil master accepted")
	}
	if _, err := spark.NewWorkerApp(m, 99, restypes.V(1, 1, 1, 1)); err == nil {
		t.Error("bad worker index accepted")
	}
}
