package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// PlacementPolicy selects a server for a new VM (§5: "our cluster manager
// implements best-fit, first-fit, and a 2-choices policy").
type PlacementPolicy int

const (
	// BestFit picks the feasible server with the highest fitness.
	BestFit PlacementPolicy = iota
	// FirstFit picks the first feasible server.
	FirstFit
	// TwoChoices samples two random servers and picks the fitter one.
	TwoChoices
)

// String names the policy.
func (p PlacementPolicy) String() string {
	switch p {
	case BestFit:
		return "best-fit"
	case FirstFit:
		return "first-fit"
	case TwoChoices:
		return "2-choices"
	}
	return fmt.Sprintf("PlacementPolicy(%d)", int(p))
}

// Manager is the centralized deflation-aware cluster manager: it places VMs
// using the cosine-similarity fitness over availability (free + deflatable)
// and delegates reclamation to the servers' local controllers.
type Manager struct {
	servers []Node
	policy  PlacementPolicy
	rng     *rand.Rand

	placement map[string]int // VM name → server index
	rejected  int

	// freeOnlyFitness scores placements against free capacity instead of
	// free+deflatable availability — the ablation of §5's Eq. 4 fitness.
	// Feasibility is unchanged.
	freeOnlyFitness bool
}

// SetFreeOnlyFitness toggles the fitness ablation: score servers by free
// capacity only, ignoring deflatable resources.
func (m *Manager) SetFreeOnlyFitness(on bool) { m.freeOnlyFitness = on }

// NewManager builds a manager over servers. Seed drives the 2-choices
// sampling (and nothing else), keeping runs reproducible.
func NewManager(servers []Node, policy PlacementPolicy, seed int64) (*Manager, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("cluster: manager needs at least one server")
	}
	return &Manager{
		servers:   servers,
		policy:    policy,
		rng:       rand.New(rand.NewSource(seed)),
		placement: make(map[string]int),
	}, nil
}

// Servers returns the managed servers.
func (m *Manager) Servers() []Node { return m.servers }

// Rejected returns the number of launches that found no feasible server.
func (m *Manager) Rejected() int { return m.rejected }

// Preemptions sums preemptions across all servers.
func (m *Manager) Preemptions() int {
	n := 0
	for _, s := range m.servers {
		n += s.Preemptions()
	}
	return n
}

// placementVector is the non-disruptive capacity a launch may draw on:
// availability (free + deflatable, §5 Eq. 4) in deflation mode, free
// capacity only under the preemption-only baseline.
func placementVector(s Node, spec LaunchSpec) restypes.Vector {
	if s.Mode() == ModeDeflation {
		return s.Availability()
	}
	return s.Free()
}

// fitness is §5's placement score: the cosine similarity between the VM's
// demand vector and the server's availability vector.
func (m *Manager) fitness(s Node, spec LaunchSpec) float64 {
	if m.freeOnlyFitness {
		return spec.Size.CosineSimilarity(s.Free())
	}
	return spec.Size.CosineSimilarity(placementVector(s, spec))
}

// feasible reports whether the server can host the VM without preempting
// anything.
func feasible(s Node, spec LaunchSpec) bool {
	return spec.Size.Fits(placementVector(s, spec))
}

// preemptFeasible reports whether the server could host the VM if
// low-priority VMs were preempted — the last resort for high-priority
// placements.
func preemptFeasible(s Node, spec LaunchSpec) bool {
	return spec.Priority == vm.HighPriority && spec.Size.Fits(s.PreemptableCeiling())
}

// Launch places and starts a VM according to the placement policy. It
// returns the chosen server index and the reclamation report.
func (m *Manager) Launch(spec LaunchSpec) (int, LaunchReport, error) {
	if _, ok := m.placement[spec.Name]; ok {
		return -1, LaunchReport{}, fmt.Errorf("%w: %q", ErrVMExists, spec.Name)
	}
	idx := m.pickServer(spec)
	if idx < 0 {
		// No server can host without disruption; high-priority VMs fall
		// back to the server where preemption frees the most room.
		idx = m.preemptFallback(spec)
	}
	if idx < 0 {
		m.rejected++
		return -1, LaunchReport{}, fmt.Errorf("%w: no feasible server for %v", ErrNoCapacity, spec.Size)
	}
	rep, err := m.servers[idx].Launch(spec)
	if err != nil {
		return -1, rep, err
	}
	m.placement[spec.Name] = idx
	// Preempted VMs vanish from the placement map too.
	for _, name := range rep.Preempted {
		delete(m.placement, name)
	}
	return idx, rep, nil
}

func (m *Manager) pickServer(spec LaunchSpec) int {
	switch m.policy {
	case FirstFit:
		for i, s := range m.servers {
			if feasible(s, spec) {
				return i
			}
		}
		return -1
	case TwoChoices:
		a := m.rng.Intn(len(m.servers))
		b := m.rng.Intn(len(m.servers))
		fa, fb := feasible(m.servers[a], spec), feasible(m.servers[b], spec)
		switch {
		case fa && fb:
			if m.fitness(m.servers[a], spec) >= m.fitness(m.servers[b], spec) {
				return a
			}
			return b
		case fa:
			return a
		case fb:
			return b
		}
		// Both samples infeasible: fall back to best-fit so that a busy
		// cluster does not spuriously reject (the paper's simulator admits
		// whenever any server fits).
		return m.bestFit(spec)
	default:
		return m.bestFit(spec)
	}
}

func (m *Manager) bestFit(spec LaunchSpec) int {
	best, bestFitness := -1, -1.0
	for i, s := range m.servers {
		if !feasible(s, spec) {
			continue
		}
		if f := m.fitness(s, spec); f > bestFitness {
			best, bestFitness = i, f
		}
	}
	return best
}

func (m *Manager) preemptFallback(spec LaunchSpec) int {
	best, bestCeiling := -1, restypes.Vector{}
	for i, s := range m.servers {
		if !preemptFeasible(s, spec) {
			continue
		}
		if c := s.PreemptableCeiling(); best < 0 || c.Norm() > bestCeiling.Norm() {
			best, bestCeiling = i, c
		}
	}
	return best
}

// Release ends a VM's life normally, freeing and reinflating its server.
// Releasing a VM that was preempted earlier reports ErrVMNotFound.
func (m *Manager) Release(name string) error {
	idx, ok := m.placement[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	delete(m.placement, name)
	return m.servers[idx].Release(name)
}

// Placed reports whether the named VM is currently running (not preempted,
// not released).
func (m *Manager) Placed(name string) bool {
	idx, ok := m.placement[name]
	if !ok {
		return false
	}
	if !m.servers[idx].Has(name) {
		// Preempted underneath: reconcile.
		delete(m.placement, name)
		return false
	}
	return true
}

// Stats is a cluster-wide utilization snapshot.
type Stats struct {
	VMs                  int
	MeanOvercommitment   float64
	MaxOvercommitment    float64
	ServerOvercommitment []float64 // sorted ascending
}

// Snapshot computes current cluster statistics.
func (m *Manager) Snapshot() Stats {
	var st Stats
	st.VMs = len(m.placement)
	for _, s := range m.servers {
		oc := s.Overcommitment()
		st.ServerOvercommitment = append(st.ServerOvercommitment, oc)
		st.MeanOvercommitment += oc
		if oc > st.MaxOvercommitment {
			st.MaxOvercommitment = oc
		}
	}
	st.MeanOvercommitment /= float64(len(m.servers))
	sort.Float64s(st.ServerOvercommitment)
	return st
}
