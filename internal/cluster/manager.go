package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"deflation/internal/faults"
	"deflation/internal/journal"
	"deflation/internal/migration"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// PlacementPolicy selects a server for a new VM (§5: "our cluster manager
// implements best-fit, first-fit, and a 2-choices policy").
type PlacementPolicy int

const (
	// BestFit picks the feasible server with the highest fitness.
	BestFit PlacementPolicy = iota
	// FirstFit picks the first feasible server.
	FirstFit
	// TwoChoices samples two random servers and picks the fitter one.
	TwoChoices
	// WorstFit picks the feasible server with the most free capacity
	// (largest free-vector magnitude) — the classic load-spreading
	// baseline, the antithesis of BestFit's packing. Feasibility still
	// counts deflatable capacity like every other policy, but the rank
	// metric is raw free space: ranking by availability would tie a
	// server full of deflatable low-priority VMs with an empty one (both
	// "available"), collapsing the policy into first-fit.
	WorstFit
)

// String names the policy.
func (p PlacementPolicy) String() string {
	switch p {
	case BestFit:
		return "best-fit"
	case FirstFit:
		return "first-fit"
	case TwoChoices:
		return "2-choices"
	case WorstFit:
		return "worst-fit"
	}
	return fmt.Sprintf("PlacementPolicy(%d)", int(p))
}

// HealthPolicy configures the manager's failure detector.
type HealthPolicy struct {
	// MaxMisses is the number of consecutive failed heartbeats before a
	// node is declared dead and evacuated (default 3).
	MaxMisses int
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.MaxMisses == 0 {
		p.MaxMisses = 3
	}
	return p
}

// nodeHealth is the failure detector's per-node state.
type nodeHealth struct {
	misses int
	dead   bool
}

// HealthEventKind enumerates failure-detector outcomes.
type HealthEventKind int

const (
	// NodeDown: K consecutive heartbeat misses; the node's VMs are being
	// evacuated.
	NodeDown HealthEventKind = iota
	// NodeUp: a previously-dead node answered a heartbeat and rejoined the
	// placement pool (empty: crash-stop wipes its VMs).
	NodeUp
	// VMEvicted: a VM on a dead node was declared lost-in-place (a
	// failure-induced preemption).
	VMEvicted
	// VMReplaced: an evicted VM was re-launched on a healthy node.
	VMReplaced
	// VMLost: no healthy node could host the evicted VM.
	VMLost
	// VMAdopted: a rejoined node still ran a VM the manager did not place
	// there; the VM was adopted instead of the node being wiped.
	VMAdopted
	// VMStaleReleased: a rejoined node held a stale copy of a VM that was
	// re-placed elsewhere while the node was dead; the copy was released.
	VMStaleReleased
)

// String names the kind.
func (k HealthEventKind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case VMEvicted:
		return "vm-evicted"
	case VMReplaced:
		return "vm-replaced"
	case VMLost:
		return "vm-lost"
	case VMAdopted:
		return "vm-adopted"
	case VMStaleReleased:
		return "vm-stale-released"
	}
	return fmt.Sprintf("HealthEventKind(%d)", int(k))
}

// HealthEvent is one failure-detector outcome from ProbeHealth.
type HealthEvent struct {
	Kind HealthEventKind
	Node string
	VM   string
	// Preempted lists capacity preemptions a re-placement caused on its
	// new server (VMReplaced only).
	Preempted []string
	Err       error
}

// Manager is the centralized deflation-aware cluster manager: it places VMs
// using the cosine-similarity fitness over availability (free + deflatable)
// and delegates reclamation to the servers' local controllers. It also runs
// the cluster's failure detector: ProbeHealth heartbeats every server,
// declares nodes dead after K consecutive misses, evacuates and re-places
// their VMs, and lets recovered nodes rejoin.
type Manager struct {
	servers []Node
	policy  PlacementPolicy
	rng     *rand.Rand

	placement map[string]int        // VM name → server index
	specs     map[string]LaunchSpec // VM name → launch spec, for re-placement
	rejected  int

	healthPolicy HealthPolicy
	health       []nodeHealth
	// failurePreemptions counts VMs killed by node failures (evictions);
	// replacedVMs/lostVMs split them by re-placement outcome.
	failurePreemptions int
	replacedVMs        int
	lostVMs            int
	// adoptedVMs/staleReleases count anti-entropy reconciliation repairs:
	// VMs found running without a journaled placement, and stale copies
	// released from rejoined nodes.
	adoptedVMs    int
	staleReleases int

	// rec receives every state transition (nil = no recording); journal is
	// the attached WAL when the manager is durable. recoveryOrphans holds
	// VMs journaled on servers absent from the fleet, pending re-placement.
	rec             Recorder
	journal         *journal.Journal
	recoveryOrphans []string
	// nodeURLs holds the control endpoints of dynamically registered
	// agents (AddNode), journaled so recovery and cross-shard adoption can
	// re-dial the same fleet. Statically configured servers never appear.
	nodeURLs map[string]string
	// recoveryMigrations holds migrations that were in flight when the
	// manager died, pending resolution against the destination's inventory.
	recoveryMigrations map[string]MigrationIntent

	// freeOnlyFitness scores placements against free capacity instead of
	// free+deflatable availability — the ablation of §5's Eq. 4 fitness.
	// Feasibility is unchanged.
	freeOnlyFitness bool

	// Migration state (see migrate.go). reclaim selects the reclamation
	// fallback for high-priority placements; its zero value (ReclaimPreempt)
	// takes exactly the pre-migration code path. inflight tracks migrations
	// between their start and done/fail journal events so a mid-migration
	// snapshot stays recoverable.
	reclaim      ReclaimPolicy
	migModel     migration.Model
	migScheduler func(d time.Duration, f func())
	migFaults    *faults.Injector
	inflight     map[string]MigrationIntent

	migrations          int
	migrationFailures   int
	convergenceFailures int
	migratedMB          float64
	migrationTime       time.Duration
	migrationDowntime   time.Duration

	// epoch is this manager's leadership fencing epoch (0 = unfenced legacy
	// single-manager mode). It is stamped into every WAL record and every
	// node RPC; see fence.go. id is the leader identity that breaks
	// same-epoch ties at the controllers' guards. walErr records the journal
	// failure that fail-stopped durable recording (nil while healthy);
	// deposed latches once a controller refuses this manager's epoch — a
	// newer leader has fenced it off, and it must stand down rather than run
	// on as a zombie issuing doomed commands.
	epoch     uint64
	id        string
	walErr    error
	deposed   bool
	onDeposed func() // invoked once, on the first stale-epoch observation

	tel *managerTelemetry // nil = no instrumentation

	// pidx is the segment-tree placement index (see placement_index.go):
	// non-nil when every node supports capacity push-invalidation, in which
	// case BestFit/WorstFit/FirstFit and the preemption fallback resolve
	// through it — returning bit-identical choices to the linear scans.
	// Dynamic fleet membership (AddNode/RemoveNode) disables it for the
	// manager's lifetime; those fleets stay on the scans.
	pidx *placementIndex
}

// SetFreeOnlyFitness toggles the fitness ablation: score servers by free
// capacity only, ignoring deflatable resources.
func (m *Manager) SetFreeOnlyFitness(on bool) { m.freeOnlyFitness = on }

// NewManager builds a manager over servers. Seed drives the 2-choices
// sampling (and nothing else), keeping runs reproducible. An empty fleet
// is valid — a federated shard starts with zero nodes and grows through
// AddNode registrations; every launch rejects until a node arrives.
func NewManager(servers []Node, policy PlacementPolicy, seed int64) (*Manager, error) {
	return &Manager{
		servers:      servers,
		policy:       policy,
		rng:          rand.New(rand.NewSource(seed)),
		placement:    make(map[string]int),
		specs:        make(map[string]LaunchSpec),
		nodeURLs:     make(map[string]string),
		healthPolicy: HealthPolicy{}.withDefaults(),
		health:       make([]nodeHealth, len(servers)),
		pidx:         newPlacementIndex(servers),
	}, nil
}

// SetHealthPolicy configures the failure detector.
func (m *Manager) SetHealthPolicy(p HealthPolicy) { m.healthPolicy = p.withDefaults() }

// Epoch returns the manager's leadership fencing epoch (0 = unfenced).
func (m *Manager) Epoch() uint64 { return m.epoch }

// SetEpoch installs the fencing epoch and propagates it to the attached
// journal (stamped into every record) and to every node client that
// understands epochs (RemoteNode stamps it onto every RPC). Runs on the
// manager's goroutine like every other mutation.
func (m *Manager) SetEpoch(epoch uint64) {
	m.epoch = epoch
	if m.journal != nil && epoch > m.journal.Epoch() {
		m.journal.SetEpoch(epoch)
	}
	for _, s := range m.servers {
		if es, ok := s.(interface{ SetEpoch(uint64) }); ok {
			es.SetEpoch(epoch)
		}
	}
}

// Identity returns the manager's leader identity ("" = none configured).
func (m *Manager) Identity() string { return m.id }

// SetIdentity installs the leader identity carried alongside the epoch on
// every node RPC. Two managers that self-allocate the same epoch (a crashed
// leader's restart racing its standby's promotion) are distinguished by
// identity at each controller's guard: whichever asserts first wins the
// tie, the other is refused and stands down. Must be set before the epoch
// is first asserted; distinct managers must use distinct identities (the
// daemon derives it from hostname + state directory).
func (m *Manager) SetIdentity(id string) {
	m.id = id
	for _, s := range m.servers {
		if is, ok := s.(interface{ SetLeaderID(string) }); ok {
			is.SetLeaderID(id)
		}
	}
}

// clusterFencedEpoch asks every node that can answer for the highest epoch
// its guard has obeyed and returns the maximum. Unreachable nodes are
// skipped: they cannot obey anyone until they rejoin, at which point the
// failure detector's fenced probes re-assert the current term.
func (m *Manager) clusterFencedEpoch() uint64 {
	var top uint64
	for _, s := range m.servers {
		fe, ok := s.(interface{ FencedEpoch() (uint64, error) })
		if !ok {
			continue
		}
		if e, err := fe.FencedEpoch(); err == nil && e > top {
			top = e
		}
	}
	return top
}

// BecomeLeader assumes a new leadership term: the epoch bumps strictly past
// every term this manager has seen AND past the cluster-wide fenced maximum
// (queried from the reachable controllers), the bump propagates to the
// journal and node clients, and a leader record is journaled so replicas
// and future recoveries learn the term. Probing the cluster matters for a
// crashed leader's restart: its own journal only knows its last term, but
// the controllers may already be fenced at the promoted standby's higher
// epoch — starting from the cluster maximum keeps the new term unambiguous
// instead of colliding with the standby's. Returns the new epoch.
func (m *Manager) BecomeLeader() uint64 {
	e := m.epoch
	if ce := m.clusterFencedEpoch(); ce > e {
		e = ce
	}
	m.SetEpoch(e + 1)
	m.record(Event{Kind: evLeader})
	return m.epoch
}

// Deposed reports whether a controller has refused this manager's epoch —
// proof a newer leader owns the cluster. A deposed manager must stand down:
// the API layer refuses further commands and the daemon exits.
func (m *Manager) Deposed() bool { return m.deposed }

// SetOnDeposed registers a callback invoked once, when the manager first
// observes ErrStaleEpoch from a node. The daemon uses it to fail-stop
// instead of running on as a zombie with every RPC refused.
func (m *Manager) SetOnDeposed(fn func()) { m.onDeposed = fn }

// noteDeposed latches the deposed state when err shows this manager's
// epoch was fenced off. Called on every node-RPC error path.
func (m *Manager) noteDeposed(err error) {
	if err == nil || m.deposed || !errors.Is(err, ErrStaleEpoch) {
		return
	}
	m.deposed = true
	if m.onDeposed != nil {
		m.onDeposed()
	}
}

// alive reports whether server i is in the placement pool.
func (m *Manager) alive(i int) bool { return !m.health[i].dead }

// DeadServers counts servers currently marked dead.
func (m *Manager) DeadServers() int {
	n := 0
	for _, h := range m.health {
		if h.dead {
			n++
		}
	}
	return n
}

// FailurePreemptions counts VMs killed by node failures (whether or not
// they were successfully re-placed).
func (m *Manager) FailurePreemptions() int { return m.failurePreemptions }

// ProbeHealth runs one heartbeat round: every server is pinged, consecutive
// misses are counted, nodes crossing MaxMisses are declared dead and
// evacuated (their VMs re-placed on healthy servers), and previously-dead
// nodes that answer rejoin the pool. It returns the round's events in
// deterministic order.
func (m *Manager) ProbeHealth() []HealthEvent {
	var events []HealthEvent
	for i, s := range m.servers {
		err := s.Ping()
		m.noteDeposed(err)
		h := &m.health[i]
		if err == nil {
			if h.dead {
				h.dead = false
				events = append(events, HealthEvent{Kind: NodeUp, Node: s.Name()})
				m.record(Event{Kind: evNodeUp, Node: s.Name()})
				if m.tel != nil {
					m.tel.nodeUp.Inc()
				}
				// The node may rejoin with VMs still running (a partition,
				// or an agent that outlived its manager): reconcile against
				// its actual inventory instead of assuming it is empty.
				events = append(events, m.reconcileNode(i)...)
			}
			h.misses = 0
			continue
		}
		h.misses++
		if m.tel != nil {
			m.tel.heartbeatMisses.Inc()
		}
		if !h.dead && h.misses >= m.healthPolicy.MaxMisses {
			h.dead = true
			events = append(events, HealthEvent{Kind: NodeDown, Node: s.Name(), Err: err})
			m.record(Event{Kind: evNodeDown, Node: s.Name()})
			if m.tel != nil {
				m.tel.nodeDown.Inc()
			}
			events = append(events, m.evacuate(i)...)
		}
	}
	return events
}

// evacuate declares every VM placed on the dead server idx a
// failure-induced preemption and re-places each on the healthy servers from
// its recorded launch spec. VM order is sorted for determinism.
func (m *Manager) evacuate(idx int) []HealthEvent {
	var names []string
	for name, i := range m.placement {
		if i == idx {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	node := m.servers[idx].Name()
	var events []HealthEvent
	for _, name := range names {
		delete(m.placement, name)
		m.failurePreemptions++
		spec := m.specs[name]
		delete(m.specs, name)
		events = append(events, HealthEvent{Kind: VMEvicted, Node: node, VM: name})
		m.record(Event{Kind: evEvict, VM: name, Node: node})
		if m.tel != nil {
			m.tel.evictions.Inc()
		}
		// Re-place; the launch does not count toward Rejected(), which
		// tracks user-facing admissions.
		to, rep, err := m.launch(spec, false)
		if err != nil {
			m.lostVMs++
			m.record(Event{Kind: evLost, VM: name})
			if m.tel != nil {
				m.tel.vmLost.Inc()
			}
			events = append(events, HealthEvent{Kind: VMLost, VM: name, Err: err})
			continue
		}
		m.replacedVMs++
		m.record(Event{Kind: evReplace, VM: name, Node: m.servers[to].Name(),
			Spec: &spec, Preempted: rep.Preempted})
		if m.tel != nil {
			m.tel.vmReplaced.Inc()
		}
		events = append(events, HealthEvent{Kind: VMReplaced, VM: name, Preempted: rep.Preempted})
	}
	return events
}

// reconcileNode compares a rejoined node's actual VM inventory with the
// manager's placements: VMs the manager placed there re-adopt silently,
// unknown VMs are adopted into the placement map, and stale copies of VMs
// re-placed elsewhere while the node was dead are released. Nodes without
// an inventory (or still unreachable) reconcile to nothing, preserving the
// crash-stop "rejoins empty" behavior.
func (m *Manager) reconcileNode(i int) []HealthEvent {
	inv, err := nodeInventory(m.servers[i])
	if err != nil || len(inv) == 0 {
		return nil
	}
	node := m.servers[i].Name()
	sort.Slice(inv, func(a, b int) bool { return inv[a].Name < inv[b].Name })
	var events []HealthEvent
	for _, vs := range inv {
		cur, ok := m.placement[vs.Name]
		switch {
		case !ok:
			spec := specFromVMState(vs)
			m.placement[vs.Name] = i
			m.specs[vs.Name] = spec
			m.adoptedVMs++
			m.record(Event{Kind: evAdopt, VM: vs.Name, Node: node, Spec: &spec})
			if m.tel != nil {
				m.tel.vmAdopted.Inc()
			}
			events = append(events, HealthEvent{Kind: VMAdopted, Node: node, VM: vs.Name})
		case cur == i:
			// Consistent: the journal (or a surviving manager) already
			// places it here.
		default:
			if err := m.servers[i].Release(vs.Name); err == nil {
				m.staleReleases++
				m.record(Event{Kind: evStale, VM: vs.Name, Node: node})
				if m.tel != nil {
					m.tel.vmStaleReleased.Inc()
				}
				events = append(events, HealthEvent{Kind: VMStaleReleased, Node: node, VM: vs.Name})
			}
		}
	}
	return events
}

// Servers returns the managed servers.
func (m *Manager) Servers() []Node { return m.servers }

// Substrates maps each server name to its substrate kind ("hypervisor",
// "container", or "" when the node has not reported one). Operators read
// this through /v1/state to see where container-backed VMs can land.
func (m *Manager) Substrates() map[string]string {
	out := make(map[string]string, len(m.servers))
	for _, s := range m.servers {
		out[s.Name()] = nodeSubstrate(s)
	}
	return out
}

// Rejected returns the number of launches that found no feasible server.
func (m *Manager) Rejected() int { return m.rejected }

// Preemptions sums preemptions across all servers.
func (m *Manager) Preemptions() int {
	n := 0
	for _, s := range m.servers {
		n += s.Preemptions()
	}
	return n
}

// placementVector is the non-disruptive capacity a launch may draw on:
// availability (free + deflatable, §5 Eq. 4) in deflation mode, free
// capacity only under the preemption-only baseline.
func placementVector(s Node, spec LaunchSpec) restypes.Vector {
	if s.Mode() == ModeDeflation {
		return s.Availability()
	}
	return s.Free()
}

// fitness is §5's placement score: the cosine similarity between the VM's
// demand vector and the server's availability vector.
func (m *Manager) fitness(s Node, spec LaunchSpec) float64 {
	if m.freeOnlyFitness {
		return spec.Size.CosineSimilarity(s.Free())
	}
	return spec.Size.CosineSimilarity(placementVector(s, spec))
}

// feasible reports whether the server can host the VM without preempting
// anything. A spec pinned to a substrate kind only fits nodes of that kind.
func feasible(s Node, spec LaunchSpec) bool {
	return substrateCompatible(s, spec.Substrate) && spec.Size.Fits(placementVector(s, spec))
}

// preemptFeasible reports whether the server could host the VM if
// low-priority VMs were preempted — the last resort for high-priority
// placements.
func preemptFeasible(s Node, spec LaunchSpec) bool {
	return spec.Priority == vm.HighPriority && substrateCompatible(s, spec.Substrate) &&
		spec.Size.Fits(s.PreemptableCeiling())
}

// Launch places and starts a VM according to the placement policy. It
// returns the chosen server index and the reclamation report.
func (m *Manager) Launch(spec LaunchSpec) (int, LaunchReport, error) {
	return m.launch(spec, true)
}

func (m *Manager) launch(spec LaunchSpec, countRejection bool) (int, LaunchReport, error) {
	if _, ok := m.placement[spec.Name]; ok {
		return -1, LaunchReport{}, fmt.Errorf("%w: %q", ErrVMExists, spec.Name)
	}
	idx := m.pickServer(spec)
	if idx < 0 && m.reclaim != ReclaimPreempt {
		// Migration-based reclamation: move low-priority VMs out of the
		// way (deflating them first under deflate-then-migrate) instead of
		// killing them.
		idx = m.migrateFallback(spec)
	}
	if idx < 0 {
		// No server can host without disruption; high-priority VMs fall
		// back to the server where preemption frees the most room.
		idx = m.preemptFallback(spec)
	}
	if idx < 0 {
		if countRejection {
			m.rejected++
			m.record(Event{Kind: evReject, VM: spec.Name})
			if m.tel != nil {
				m.tel.rejections.Inc()
			}
		}
		return -1, LaunchReport{}, fmt.Errorf("%w: no feasible server for %v", ErrNoCapacity, spec.Size)
	}
	// Stamp the landing node's substrate kind into the spec before it is
	// journaled, so recovery and failure re-placement keep the VM on the
	// substrate it actually booted on (a container-backed VM must never be
	// revived as a hypervisor domain, and vice versa).
	if spec.Substrate == "" {
		spec.Substrate = nodeSubstrate(m.servers[idx])
	}
	rep, err := m.servers[idx].Launch(spec)
	if err != nil {
		m.noteDeposed(err)
		return -1, rep, err
	}
	if m.tel != nil && idx < len(m.tel.placements) {
		m.tel.placements[idx].Inc()
	}
	m.placement[spec.Name] = idx
	m.specs[spec.Name] = spec
	// Preempted VMs vanish from the placement map too.
	for _, name := range rep.Preempted {
		delete(m.placement, name)
		delete(m.specs, name)
	}
	if countRejection {
		// User-facing placement; internal re-placements journal as
		// "replace" (or reconciliation repairs) at the call site instead.
		m.record(Event{Kind: evLaunch, VM: spec.Name, Node: m.servers[idx].Name(),
			Spec: &spec, Preempted: rep.Preempted})
	}
	return idx, rep, nil
}

func (m *Manager) pickServer(spec LaunchSpec) int {
	if len(m.servers) == 0 {
		return -1
	}
	switch m.policy {
	case FirstFit:
		if m.pidx != nil {
			return m.pidx.firstFit(m, spec)
		}
		for i, s := range m.servers {
			if m.alive(i) && feasible(s, spec) {
				return i
			}
		}
		return -1
	case WorstFit:
		return m.worstFit(spec)
	case TwoChoices:
		a := m.rng.Intn(len(m.servers))
		b := m.rng.Intn(len(m.servers))
		fa := m.alive(a) && feasible(m.servers[a], spec)
		fb := m.alive(b) && feasible(m.servers[b], spec)
		switch {
		case fa && fb:
			if m.fitness(m.servers[a], spec) >= m.fitness(m.servers[b], spec) {
				return a
			}
			return b
		case fa:
			return a
		case fb:
			return b
		}
		// Both samples infeasible: fall back to best-fit so that a busy
		// cluster does not spuriously reject (the paper's simulator admits
		// whenever any server fits).
		return m.bestFit(spec)
	default:
		return m.bestFit(spec)
	}
}

func (m *Manager) bestFit(spec LaunchSpec) int {
	if m.pidx != nil {
		return m.pidx.bestFit(m, spec)
	}
	best, bestFitness := -1, -1.0
	for i, s := range m.servers {
		if !m.alive(i) || !feasible(s, spec) {
			continue
		}
		if f := m.fitness(s, spec); f > bestFitness {
			best, bestFitness = i, f
		}
	}
	return best
}

func (m *Manager) worstFit(spec LaunchSpec) int {
	if m.pidx != nil {
		return m.pidx.worstFit(m, spec)
	}
	best, bestRoom := -1, -1.0
	for i, s := range m.servers {
		if !m.alive(i) || !feasible(s, spec) {
			continue
		}
		if r := s.Free().Norm(); r > bestRoom {
			best, bestRoom = i, r
		}
	}
	return best
}

func (m *Manager) preemptFallback(spec LaunchSpec) int {
	if m.pidx != nil {
		return m.pidx.preemptFallback(m, spec)
	}
	best, bestCeiling := -1, restypes.Vector{}
	for i, s := range m.servers {
		if !m.alive(i) || !preemptFeasible(s, spec) {
			continue
		}
		if c := s.PreemptableCeiling(); best < 0 || c.Norm() > bestCeiling.Norm() {
			best, bestCeiling = i, c
		}
	}
	return best
}

// Release ends a VM's life normally, freeing and reinflating its server.
// Releasing a VM that was preempted earlier reports ErrVMNotFound.
func (m *Manager) Release(name string) error {
	idx, ok := m.placement[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrVMNotFound, name)
	}
	delete(m.placement, name)
	delete(m.specs, name)
	m.record(Event{Kind: evRelease, VM: name})
	err := m.servers[idx].Release(name)
	m.noteDeposed(err)
	return err
}

// Placed reports whether the named VM is currently running (not preempted,
// not released). An unreachable server is NOT evidence the VM is gone: the
// placement is kept until the health monitor declares the node dead, so a
// transient network failure never corrupts placement state.
func (m *Manager) Placed(name string) bool {
	idx, ok := m.placement[name]
	if !ok {
		return false
	}
	has, err := m.servers[idx].Has(name)
	if err != nil {
		return true // can't confirm; the failure detector will decide
	}
	if !has {
		// Preempted underneath: reconcile.
		delete(m.placement, name)
		delete(m.specs, name)
		m.record(Event{Kind: evPreempt, VM: name})
		return false
	}
	return true
}

// Stats is a cluster-wide utilization snapshot.
type Stats struct {
	VMs                  int
	MeanOvercommitment   float64
	MaxOvercommitment    float64
	ServerOvercommitment []float64 // sorted ascending
	// DeadServers and the failure counters summarize the failure
	// detector's view: VMs killed by node crashes (failure-induced
	// preemptions), split into re-placed and lost.
	DeadServers        int
	FailurePreemptions int
	ReplacedVMs        int
	LostVMs            int
	// AdoptedVMs and StaleReleases count anti-entropy reconciliation
	// repairs (rejoin adoption and stale-copy release).
	AdoptedVMs    int
	StaleReleases int
}

// Snapshot computes current cluster statistics.
func (m *Manager) Snapshot() Stats {
	var st Stats
	st.VMs = len(m.placement)
	st.DeadServers = m.DeadServers()
	st.FailurePreemptions = m.failurePreemptions
	st.ReplacedVMs = m.replacedVMs
	st.LostVMs = m.lostVMs
	st.AdoptedVMs = m.adoptedVMs
	st.StaleReleases = m.staleReleases
	for _, s := range m.servers {
		oc := s.Overcommitment()
		st.ServerOvercommitment = append(st.ServerOvercommitment, oc)
		st.MeanOvercommitment += oc
		if oc > st.MaxOvercommitment {
			st.MaxOvercommitment = oc
		}
	}
	if len(m.servers) > 0 {
		st.MeanOvercommitment /= float64(len(m.servers))
	}
	sort.Float64s(st.ServerOvercommitment)
	return st
}
