package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"deflation/internal/journal"
	"deflation/internal/vm"
)

// newLeaderServer builds a durable manager serving ManagerAPI (including the
// WAL replication route) over httptest.
func newLeaderServer(t *testing.T, n int) (*Manager, *httptest.Server) {
	t.Helper()
	mgr := newCluster(t, n, BestFit)
	j, err := journal.Open(t.TempDir(), journal.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr.AttachJournal(j, 1<<30)
	mgr.BecomeLeader()
	api, err := NewManagerAPI(mgr)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { j.Close() })
	return mgr, srv
}

func TestFollowerTailsLeaderWAL(t *testing.T) {
	mgr, srv := newLeaderServer(t, 2)
	f, err := NewFollower(FollowerConfig{Leader: srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := mgr.Launch(durSpec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	if err := f.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Placements(), mgr.Placements()) {
		t.Fatalf("replica diverged after first poll:\n%v\n%v", f.Placements(), mgr.Placements())
	}

	// Incremental tailing: only the delta crosses the wire and the replica
	// keeps converging.
	if _, _, err := mgr.Launch(durSpec("b", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Release("a"); err != nil {
		t.Fatal(err)
	}
	if err := f.PollOnce(); err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if !reflect.DeepEqual(f.Placements(), mgr.Placements()) {
		t.Fatalf("replica diverged after tailing:\n%v\n%v", f.Placements(), mgr.Placements())
	}
	if st.Lag != 0 {
		t.Errorf("caught-up follower reports lag %d", st.Lag)
	}
	if st.Epoch != mgr.Epoch() {
		t.Errorf("replica epoch %d != leader epoch %d", st.Epoch, mgr.Epoch())
	}
	if st.LeaderDead {
		t.Error("live leader reported dead")
	}
}

func TestFollowerResetsFromCompactedSnapshot(t *testing.T) {
	mgr, srv := newLeaderServer(t, 2)
	for _, name := range []string{"a", "b", "c"} {
		if _, _, err := mgr.Launch(durSpec(name, vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	// Compact everything into a snapshot, then write more log on top: a
	// fresh follower's position predates the compaction and must reset.
	if err := mgr.Journal().Snapshot(mgr.walState()); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Release("c"); err != nil {
		t.Fatal(err)
	}

	f, err := NewFollower(FollowerConfig{Leader: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PollOnce(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Placements(), mgr.Placements()) {
		t.Fatalf("snapshot reset diverged:\n%v\n%v", f.Placements(), mgr.Placements())
	}
}

func TestFollowerLeaseExpiry(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // leader is already dead
	f, err := NewFollower(FollowerConfig{Leader: srv.URL, DeadAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if f.PollOnce() == nil {
			t.Fatal("poll of a dead leader succeeded")
		}
		if f.LeaderDead() {
			t.Fatalf("lease expired after %d misses, threshold 3", i+1)
		}
	}
	if f.PollOnce() == nil {
		t.Fatal("poll of a dead leader succeeded")
	}
	if !f.LeaderDead() {
		t.Error("lease not expired at the miss threshold")
	}
	if s := f.Status(); !s.LeaderDead || s.LastError == "" {
		t.Errorf("status does not reflect the dead lease: %+v", s)
	}
}

func TestStandbyAPIServesReplicaView(t *testing.T) {
	mgr, leader := newLeaderServer(t, 2)
	if _, _, err := mgr.Launch(durSpec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	f, err := NewFollower(FollowerConfig{Leader: leader.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PollOnce(); err != nil {
		t.Fatal(err)
	}
	api, err := NewStandbyAPI(f)
	if err != nil {
		t.Fatal(err)
	}
	standby := httptest.NewServer(api.Handler())
	defer standby.Close()

	resp, err := http.Get(standby.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state ManagerStateResponse
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state.Role != RoleStandby {
		t.Errorf("role = %q", state.Role)
	}
	if state.Epoch != mgr.Epoch() {
		t.Errorf("standby epoch %d != leader %d", state.Epoch, mgr.Epoch())
	}
	if state.Replication == nil || state.Replication.AppliedSeq == 0 {
		t.Errorf("replication status missing: %+v", state.Replication)
	}
	if state.Placements["a"] == "" {
		t.Errorf("replica placements not served: %+v", state.Placements)
	}
}

func TestPromoteStandbyFromHTTPReplica(t *testing.T) {
	mgr, srv := newLeaderServer(t, 2)
	for _, name := range []string{"a", "b"} {
		if _, _, err := mgr.Launch(durSpec(name, vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := NewFollower(FollowerConfig{Leader: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PollOnce(); err != nil {
		t.Fatal(err)
	}

	// The leader dies; the standby promotes from its warm replica against
	// the same (still-running) nodes.
	oldEpoch := mgr.Epoch()
	srv.Close()
	mgr.Journal().Close()
	m2, rep, err := PromoteStandby(DurabilityConfig{Dir: t.TempDir()},
		f.ReplicaState(), mgr.Servers(), BestFit, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch() <= oldEpoch {
		t.Errorf("promoted epoch %d not past old term %d", m2.Epoch(), oldEpoch)
	}
	if !reflect.DeepEqual(m2.Placements(), mgr.Placements()) {
		t.Fatalf("takeover lost placements:\n%v\n%v", m2.Placements(), mgr.Placements())
	}
	if rep.Lost != 0 || rep.Replaced != 0 || rep.StaleReleased != 0 {
		t.Errorf("takeover of a fresh replica repaired: %+v", rep)
	}
	// The new term is fully operational: it can keep placing.
	if _, _, err := m2.Launch(durSpec("c", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
}
