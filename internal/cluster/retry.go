package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"
)

// RetryPolicy governs how RemoteNode retries idempotent control-plane
// operations (State, Release, Deflate) against a flaky controller: capped
// exponential backoff with jitter, and a per-attempt deadline replacing the
// old single flat client timeout. Non-idempotent operations (Launch) get
// the per-attempt deadline but never retry — a retried launch could
// double-place a VM.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay scales the backoff ceiling for the first retry (default
	// 50ms); each further retry doubles the ceiling, capped at MaxDelay
	// (default 2s). The actual sleep uses full jitter: uniform over
	// (0, ceiling]. After a manager failover every node's client retries at
	// once, and ±fraction jitter around the same exponential ladder still
	// synchronizes the herd into narrow bands — full jitter spreads the
	// retry load across the whole window instead.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// OpTimeout bounds each attempt via a request context deadline
	// (default 5s).
	OpTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.OpTimeout == 0 {
		p.OpTimeout = 5 * time.Second
	}
	return p
}

// backoff returns the sleep before retry number retry (0-based): full
// jitter, drawn uniformly from (0, ceiling] where the ceiling is the capped
// exponential BaseDelay<<retry. Without an rng the raw ceiling is returned
// (deterministic callers).
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << uint(retry)
	if d > p.MaxDelay || d <= 0 { // d <= 0 guards shift overflow
		d = p.MaxDelay
	}
	if rng != nil {
		// (0, d], never zero: a zero sleep would turn retry storms into
		// busy loops against a server that just failed.
		d = 1 + time.Duration(rng.Int63n(int64(d)))
	}
	return d
}

// retryableError marks a failure as safe to retry: the request either never
// definitively reached the server (connection refused/dropped, timeout — a
// transport failure) or the server answered with a 5xx without committing a
// state change — or the operation carries an idempotency key making replays
// safe anyway. transport distinguishes the ambiguous "may have applied"
// failures, which delete-style callers use to accept a 404 on replay.
type retryableError struct {
	err       error
	transport bool
}

func (e retryableError) Error() string { return e.err.Error() }
func (e retryableError) Unwrap() error { return e.err }

// retryable wraps err for the retry loop (server answered, safe to retry).
func retryable(err error) error {
	if err == nil {
		return nil
	}
	return retryableError{err: err}
}

// transportFailure wraps a connection-level error (request may or may not
// have been applied).
func transportFailure(err error) error {
	if err == nil {
		return nil
	}
	return retryableError{err: err, transport: true}
}

// isRetryable reports whether the retry loop may try again.
func isRetryable(err error) bool {
	var r retryableError
	return errors.As(err, &r)
}

// isTransportFailure reports whether err was a connection-level failure.
func isTransportFailure(err error) bool {
	var r retryableError
	return errors.As(err, &r) && r.transport
}

// statusError converts an unexpected HTTP status into an error, marking
// server-side (5xx) statuses retryable. 412 means the controller fenced
// this manager's epoch off — never retried: the only cure is standing down.
func statusError(op, status string, code int) error {
	if code == http.StatusPreconditionFailed {
		return fmt.Errorf("%w: %s refused: %s", ErrStaleEpoch, op, status)
	}
	err := fmt.Errorf("cluster: %s: %s", op, status)
	if code >= 500 {
		return retryable(err)
	}
	return err
}

// HeartbeatInterval draws the next agent-heartbeat sleep: full jitter over
// [base/2, 3·base/2), mean base. Agents started together (a rack reboot, a
// failover re-registration wave) would otherwise tick in lockstep forever
// and hit the manager in synchronized fan-in spikes; drawing every interval
// independently de-phases the fleet within a few beats and keeps it spread.
// Deterministic for a given rng stream; a nil rng returns base unchanged
// (callers that want fixed cadence).
func HeartbeatInterval(rng *rand.Rand, base time.Duration) time.Duration {
	if base <= 0 {
		base = time.Second
	}
	if rng == nil {
		return base
	}
	return base/2 + time.Duration(rng.Int63n(int64(base)))
}
