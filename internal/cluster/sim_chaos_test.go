package cluster

import (
	"testing"
	"time"

	"deflation/internal/faults"
)

func chaosSim() SimConfig {
	cfg := smallSim(ModeDeflation, 1.6)
	cfg.Faults = faults.Config{
		CrashMTBF:     20 * time.Minute, // aggressive: several crashes per run
		RecoveryTime:  2 * time.Minute,
		AgentFailProb: 0.05,
		AgentHangProb: 0.05,
		OSFailProb:    0.05,
	}
	cfg.HeartbeatInterval = 10 * time.Second
	return cfg
}

func TestChaosSimDeterministic(t *testing.T) {
	// The acceptance bar: two chaos runs with identical seeds produce
	// byte-identical results — crashes, evictions, goodput, everything.
	a, err := RunSim(chaosSim())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(chaosSim())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("chaos sim not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestChaosSimWithManagerCrashesDeterministic(t *testing.T) {
	// Manager crash-restart cycles recover the manager from the write-ahead
	// journal mid-simulation. Same seed must still mean byte-identical
	// results, and crashes must actually fire at an aggressive MTBF (the
	// small trace spans well under an hour of simulated time).
	mgrChaos := func() SimConfig {
		cfg := chaosSim()
		cfg.Faults.ManagerCrashMTBF = 5 * time.Minute
		return cfg
	}
	a, err := RunSim(mgrChaos())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(mgrChaos())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("manager-crash chaos sim not deterministic:\n%+v\n%+v", a, b)
	}
	if a.ManagerCrashes == 0 {
		t.Fatal("no manager crashes injected at 5m MTBF")
	}
	if a.FailurePreemptions != a.VMsReplaced+a.VMsLost {
		t.Errorf("accounting: %d preemptions != %d replaced + %d lost",
			a.FailurePreemptions, a.VMsReplaced, a.VMsLost)
	}
}

func TestZeroedFaultsReproduceBaseline(t *testing.T) {
	// A Faults struct with every rate zeroed must take the exact fault-free
	// code path: the chaos sweep's zero-fault cell IS the Fig. 8c baseline.
	baseline, err := RunSim(smallSim(ModeDeflation, 1.6))
	if err != nil {
		t.Fatal(err)
	}
	zeroed := smallSim(ModeDeflation, 1.6)
	zeroed.Faults = faults.Config{Seed: 999} // seed alone enables nothing
	got, err := RunSim(zeroed)
	if err != nil {
		t.Fatal(err)
	}
	if got != baseline {
		t.Errorf("zeroed faults diverge from baseline:\n%+v\n%+v", got, baseline)
	}
}

func TestMigrationChaosSimDeterministic(t *testing.T) {
	// Migration-enabled chaos runs — crash-stop nodes, manager crashes, and
	// injected mid-copy migration faults on top of deflate-then-migrate
	// reclamation — must still be byte-identical across same-seed runs.
	migChaos := func() SimConfig {
		cfg := chaosSim()
		cfg.Reclaim = ReclaimDeflateThenMigrate
		cfg.Faults.ManagerCrashMTBF = 5 * time.Minute
		cfg.Faults.MigrationFailProb = 0.2
		return cfg
	}
	a, err := RunSim(migChaos())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(migChaos())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("migration chaos sim not deterministic:\n%+v\n%+v", a, b)
	}
	if a.Migrations == 0 {
		t.Error("deflate-then-migrate chaos run performed no migrations")
	}
}

func TestZeroMigrationReproducesFig8cBaseline(t *testing.T) {
	// With the zero ReclaimPreempt policy the simulation must take exactly
	// the pre-migration code path — the migration-disabled deflation and
	// preemption-only rows ARE the existing Fig. 8c curves, bit for bit.
	for _, mode := range []Mode{ModeDeflation, ModePreemptionOnly} {
		baseline, err := RunSim(smallSim(mode, 1.6))
		if err != nil {
			t.Fatal(err)
		}
		disabled := smallSim(mode, 1.6)
		disabled.Reclaim = ReclaimPreempt
		disabled.Migration.LinkMBps = 9999 // model alone must change nothing
		got, err := RunSim(disabled)
		if err != nil {
			t.Fatal(err)
		}
		if got != baseline {
			t.Errorf("mode %v: migration-disabled run diverges from baseline:\n%+v\n%+v",
				mode, got, baseline)
		}
		if got.Migrations != 0 || got.MigratedMB != 0 {
			t.Errorf("mode %v: migrations occurred with migration disabled: %+v", mode, got)
		}
	}
}

// haChaosSim layers every control-plane fault the HA design defends against
// on top of the node/agent chaos mix: leader crashes, leader partitions long
// enough to expire the lease, and journal disk errors.
func haChaosSim() SimConfig {
	cfg := chaosSim()
	cfg.HAStandby = true
	cfg.LeaseTimeout = 30 * time.Second
	cfg.Faults.ManagerCrashMTBF = 5 * time.Minute
	cfg.Faults.PartitionMTBF = 10 * time.Minute
	cfg.Faults.PartitionDuration = 2 * time.Minute
	cfg.Faults.DiskFailProb = 0.001
	return cfg
}

func TestHAChaosSimDeterministic(t *testing.T) {
	// Failover chaos — leader crashes, partition-induced dual-leader windows,
	// poisoned journals — must stay byte-identical across same-seed runs.
	a, err := RunSim(haChaosSim())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(haChaosSim())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("HA chaos sim not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestHAChaosSimFailsOverWithoutEvictions(t *testing.T) {
	res, err := RunSim(haChaosSim())
	if err != nil {
		t.Fatal(err)
	}
	if res.ManagerCrashes == 0 {
		t.Fatal("no leader crashes injected at 5m MTBF")
	}
	if res.Failovers == 0 {
		t.Fatal("leader deaths triggered no standby takeovers")
	}
	if res.Partitions == 0 {
		t.Fatal("no leader partitions injected at 20m MTBF")
	}
	if res.StaleCommandsRejected == 0 {
		t.Error("no deposed leader was ever provably fenced after a heal")
	}
	if res.HeadlessTime == 0 {
		t.Error("failovers accrued no headless time")
	}
	// The HA acceptance property: takeovers never evict a healthy workload.
	// VMs lost to node crashes are charged to the crash paths; a VM alive on
	// its node that a new term dropped would land here.
	if res.FailoverEvictions != 0 {
		t.Errorf("takeovers evicted %d healthy VMs", res.FailoverEvictions)
	}
}

func TestHAJournalPoisoningFailsOver(t *testing.T) {
	// Disk faults alone (no crashes, no partitions): the first injected
	// write/fsync error poisons the journal, the leader fail-stops, and the
	// standby must take over — still with zero healthy-VM evictions.
	poison := func() SimConfig {
		cfg := chaosSim()
		cfg.HAStandby = true
		cfg.LeaseTimeout = 30 * time.Second
		cfg.Faults.DiskFailProb = 0.01
		return cfg
	}
	a, err := RunSim(poison())
	if err != nil {
		t.Fatal(err)
	}
	if a.JournalPoisonings == 0 {
		t.Fatal("no journal poisonings at 1% disk-fault probability")
	}
	if a.Failovers < a.JournalPoisonings {
		t.Errorf("%d poisonings but only %d failovers", a.JournalPoisonings, a.Failovers)
	}
	if a.FailoverEvictions != 0 {
		t.Errorf("poison takeovers evicted %d healthy VMs", a.FailoverEvictions)
	}
	b, err := RunSim(poison())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("poison chaos sim not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestHAStandbyZeroFaultsReproduceBaseline(t *testing.T) {
	// HAStandby without fault injection must change nothing: the flag only
	// has meaning under chaos, and the zero-fault cell stays the Fig. 8c
	// baseline bit for bit.
	baseline, err := RunSim(smallSim(ModeDeflation, 1.6))
	if err != nil {
		t.Fatal(err)
	}
	ha := smallSim(ModeDeflation, 1.6)
	ha.HAStandby = true
	ha.LeaseTimeout = time.Minute
	got, err := RunSim(ha)
	if err != nil {
		t.Fatal(err)
	}
	if got != baseline {
		t.Errorf("idle HAStandby diverges from baseline:\n%+v\n%+v", got, baseline)
	}
}

func TestChaosSimInjectsAndRecovers(t *testing.T) {
	res, err := RunSim(chaosSim())
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCrashes == 0 {
		t.Fatal("no node crashes injected at 20m MTBF over a multi-hour trace")
	}
	if res.FailurePreemptions == 0 {
		t.Error("crashes killed no VMs")
	}
	if res.FailurePreemptions != res.VMsReplaced+res.VMsLost {
		t.Errorf("accounting: %d preemptions != %d replaced + %d lost",
			res.FailurePreemptions, res.VMsReplaced, res.VMsLost)
	}
	if res.VMsReplaced == 0 {
		t.Error("no evicted VM was ever re-placed despite spare capacity")
	}
	if res.Goodput <= 0 {
		t.Error("goodput not sampled")
	}

	// Failures raise the effective preemption probability above the
	// fault-free baseline at the same overcommitment.
	baseline, err := RunSim(smallSim(ModeDeflation, 1.6))
	if err != nil {
		t.Fatal(err)
	}
	if res.PreemptionProbability <= baseline.PreemptionProbability {
		t.Errorf("chaos preemption probability %.4f not above baseline %.4f",
			res.PreemptionProbability, baseline.PreemptionProbability)
	}
}
