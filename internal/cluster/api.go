package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"deflation/internal/restypes"
	"deflation/internal/substrate"
	"deflation/internal/telemetry"
)

// The REST control plane of §5: "the centralized cluster manager and the
// local-controllers... communicate with each other via a REST API". The
// ControllerAPI exposes one server's LocalController; RemoteNode is the
// manager-side client implementing Node over HTTP; ManagerAPI exposes the
// centralized manager to operators (cmd/deflctl).

// NodeState is the wire form of a server's capacity state.
type NodeState struct {
	Name               string          `json:"name"`
	Mode               string          `json:"mode"`
	Free               restypes.Vector `json:"free"`
	Availability       restypes.Vector `json:"availability"`
	PreemptableCeiling restypes.Vector `json:"preemptable_ceiling"`
	Overcommitment     float64         `json:"overcommitment"`
	Preemptions        int             `json:"preemptions"`
	// Substrate is the node's mechanism backend ("hypervisor" or
	// "container"; empty from nodes predating the substrate abstraction,
	// which means hypervisor).
	Substrate string    `json:"substrate,omitempty"`
	VMs       []VMState `json:"vms"`
}

// VMState is the wire form of one VM's state.
type VMState struct {
	Name       string          `json:"name"`
	Priority   string          `json:"priority"`
	Size       restypes.Vector `json:"size"`
	Allocation restypes.Vector `json:"allocation"`
	MinSize    restypes.Vector `json:"min_size"`
	Throughput float64         `json:"throughput"`
	App        string          `json:"app"`
	// Substrate is the VM's backend kind (empty = hypervisor, for wire
	// compatibility with pre-substrate nodes).
	Substrate string `json:"substrate,omitempty"`
	// BalloonMB is the guest balloon size. Structurally zero for container
	// VMs — there is no balloon driver behind them; the deflload invariant
	// sweep asserts exactly that.
	BalloonMB float64 `json:"balloon_mb,omitempty"`
}

// ControllerAPI serves a LocalController over HTTP. Handlers serialize all
// controller access through a mutex: the controller itself is
// single-threaded by design.
type ControllerAPI struct {
	mu   sync.Mutex
	ctrl *LocalController

	// guard fences mutating commands by leadership epoch: once a request
	// arrives stamped with epoch N, commands from epochs < N are refused
	// with 412 — a deposed leader on the wrong side of a partition cannot
	// deflate, launch, or release anything here.
	guard EpochGuard

	// idem caches completed deflate responses by Idempotency-Key so a
	// retried deflate (response lost in transit) replays the recorded
	// outcome instead of double-reclaiming. Bounded FIFO.
	idem      map[string]DeflateVMResponse
	idemOrder []string
}

// idemCacheLimit bounds the idempotency replay cache.
const idemCacheLimit = 1024

// NewControllerAPI wraps a controller.
func NewControllerAPI(ctrl *LocalController) (*ControllerAPI, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("cluster: nil controller")
	}
	return &ControllerAPI{ctrl: ctrl, idem: make(map[string]DeflateVMResponse)}, nil
}

// Handler returns the controller's routes:
//
//	GET    /v1/healthz          — liveness probe (name)
//	GET    /v1/state            — NodeState
//	POST   /v1/vms              — LaunchSpec body → LaunchReport
//	DELETE /v1/vms/{name}       — release
//	POST   /v1/vms/{name}/deflate  — {"target": Vector} → cascade report;
//	                              honors the Idempotency-Key header
func (a *ControllerAPI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", a.handleHealthz)
	mux.HandleFunc("GET /v1/state", a.handleState)
	mux.HandleFunc("POST /v1/vms", a.handleLaunch)
	mux.HandleFunc("DELETE /v1/vms/{name}", a.handleRelease)
	mux.HandleFunc("POST /v1/vms/{name}/deflate", a.handleDeflate)
	mux.HandleFunc("GET /v1/vms/{name}/checkpoint", a.handleCheckpoint)
	mux.HandleFunc("POST /v1/vms/{name}/deflate-fully", a.handleDeflateFully)
	mux.HandleFunc("POST /v1/restore", a.handleRestore)
	mux.HandleFunc("POST /v1/streams/{stream}/reserve", a.handleReserveStream)
	mux.HandleFunc("DELETE /v1/streams/{stream}", a.handleReleaseStream)
	return mux
}

// FencedEpoch returns the highest leadership epoch this controller has
// obeyed, and how many stale-epoch commands it has refused.
func (a *ControllerAPI) FencedEpoch() (epoch, staleRejected uint64) {
	return a.guard.Current(), a.guard.StaleRejections()
}

// fence admits or refuses a mutating request by its fencing token: the
// leadership epoch plus the leader identity that breaks same-epoch ties.
// Returns false (response already written) when the caller's token is
// stale. Requests without the epoch header are legacy unfenced managers and
// are admitted.
func (a *ControllerAPI) fence(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get(epochHeader)
	if h == "" {
		return true
	}
	epoch, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		http.Error(w, "cluster: bad "+epochHeader+" header: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := a.guard.Check(epoch, r.Header.Get(leaderHeader)); err != nil {
		writeError(w, err)
		return false
	}
	return true
}

// HealthzResponse is the controller liveness probe's body. FencedEpoch and
// EpochAgeSeconds expose the guard's view of leadership: the highest epoch
// obeyed and how long since a command last asserted it. A standby uses them
// to corroborate a leader's death before promoting (a recently-asserted
// epoch means the leader is alive on some path), and a manager assuming
// leadership reads FencedEpoch to start its term past the cluster maximum.
type HealthzResponse struct {
	Name            string  `json:"name"`
	Status          string  `json:"status"`
	FencedEpoch     uint64  `json:"fenced_epoch,omitempty"`
	EpochAgeSeconds float64 `json:"epoch_age_seconds,omitempty"`
}

// handleHealthz is fenced despite being a read: a manager's liveness probe
// doubles as the epoch-assertion beacon (a new leader's first probe raises
// the guard; a deposed leader's probes are refused). Probes without the
// epoch header — load balancers, humans, standbys corroborating, leaders
// querying the fenced maximum — are always admitted.
func (a *ControllerAPI) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !a.fence(w, r) {
		return
	}
	a.mu.Lock()
	name := a.ctrl.Name()
	a.mu.Unlock()
	epoch, age := a.guard.Assertion()
	hz := HealthzResponse{Name: name, Status: "ok", FencedEpoch: epoch}
	if epoch > 0 {
		hz.EpochAgeSeconds = age.Seconds()
	}
	writeJSON(w, http.StatusOK, hz)
}

func (a *ControllerAPI) state() NodeState {
	c := a.ctrl
	st := NodeState{
		Name:               c.Name(),
		Mode:               c.Mode().String(),
		Free:               c.Free(),
		Availability:       c.Availability(),
		PreemptableCeiling: c.PreemptableCeiling(),
		Overcommitment:     c.Overcommitment(),
		Preemptions:        c.Preemptions(),
		Substrate:          c.SubstrateKind(),
	}
	st.VMs, _ = c.Inventory()
	return st
}

func (a *ControllerAPI) handleState(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	st := a.state()
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (a *ControllerAPI) handleLaunch(w http.ResponseWriter, r *http.Request) {
	if !a.fence(w, r) {
		return
	}
	var spec LaunchSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "cluster: bad launch spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	rep, err := a.ctrl.Launch(spec)
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, rep)
}

func (a *ControllerAPI) handleRelease(w http.ResponseWriter, r *http.Request) {
	if !a.fence(w, r) {
		return
	}
	a.mu.Lock()
	err := a.ctrl.Release(r.PathValue("name"))
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// DeflateVMRequest asks a controller to deflate one VM by a target vector.
type DeflateVMRequest struct {
	Target restypes.Vector `json:"target"`
}

// DeflateVMResponse reports the cascade outcome.
type DeflateVMResponse struct {
	NewAllocation restypes.Vector `json:"new_allocation"`
	Shortfall     restypes.Vector `json:"shortfall"`
	LatencyMS     float64         `json:"latency_ms"`
}

func (a *ControllerAPI) handleDeflate(w http.ResponseWriter, r *http.Request) {
	if !a.fence(w, r) {
		return
	}
	var req DeflateVMRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "cluster: bad deflate request: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := r.Header.Get("Idempotency-Key")
	a.mu.Lock()
	defer a.mu.Unlock()
	if key != "" {
		if cached, ok := a.idem[key]; ok {
			// Replay: the deflate already applied; the client retried
			// because the response was lost. Do not reclaim twice.
			w.Header().Set("Idempotency-Replayed", "true")
			writeJSON(w, http.StatusOK, cached)
			return
		}
	}
	v, err := a.ctrl.VM(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	rep, err := a.ctrl.casc.Deflate(v, req.Target)
	a.ctrl.capacityChanged() // direct cascade call bypasses the controller's hooks
	if err != nil {
		writeError(w, err)
		return
	}
	out := DeflateVMResponse{
		NewAllocation: rep.NewAllocation,
		Shortfall:     rep.Shortfall,
		LatencyMS:     float64(rep.TotalLatency) / float64(time.Millisecond),
	}
	if key != "" {
		if a.idem == nil {
			a.idem = make(map[string]DeflateVMResponse)
		}
		if len(a.idemOrder) >= idemCacheLimit {
			delete(a.idem, a.idemOrder[0])
			a.idemOrder = a.idemOrder[1:]
		}
		a.idem[key] = out
		a.idemOrder = append(a.idemOrder, key)
	}
	writeJSON(w, http.StatusOK, out)
}

// The live-migration routes (see migrate.go). Checkpoint is a read;
// restore creates the VM on this (destination) server; the stream routes
// hold and release migration link bandwidth; deflate-fully is the
// deflate-then-migrate preparation step.

func (a *ControllerAPI) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	cp, err := a.ctrl.Checkpoint(r.PathValue("name"))
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cp)
}

func (a *ControllerAPI) handleRestore(w http.ResponseWriter, r *http.Request) {
	if !a.fence(w, r) {
		return
	}
	var cp VMCheckpoint
	if err := json.NewDecoder(r.Body).Decode(&cp); err != nil {
		http.Error(w, "cluster: bad checkpoint: "+err.Error(), http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	err := a.ctrl.RestoreVM(cp)
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

// ReserveStreamRequest asks for migration link bandwidth.
type ReserveStreamRequest struct {
	RateMBps float64 `json:"rate_mbps"`
}

// ReserveStreamResponse reports the rate actually granted.
type ReserveStreamResponse struct {
	GrantedMBps float64 `json:"granted_mbps"`
}

func (a *ControllerAPI) handleReserveStream(w http.ResponseWriter, r *http.Request) {
	if !a.fence(w, r) {
		return
	}
	var req ReserveStreamRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "cluster: bad stream request: "+err.Error(), http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	granted, err := a.ctrl.ReserveStream(r.PathValue("stream"), req.RateMBps)
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ReserveStreamResponse{GrantedMBps: granted})
}

func (a *ControllerAPI) handleReleaseStream(w http.ResponseWriter, r *http.Request) {
	if !a.fence(w, r) {
		return
	}
	a.mu.Lock()
	err := a.ctrl.ReleaseStream(r.PathValue("stream"))
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// DeflateFullyResponse reports the cascade latency of a full deflation.
type DeflateFullyResponse struct {
	LatencyMS float64 `json:"latency_ms"`
}

func (a *ControllerAPI) handleDeflateFully(w http.ResponseWriter, r *http.Request) {
	if !a.fence(w, r) {
		return
	}
	a.mu.Lock()
	d, err := a.ctrl.DeflateFully(r.PathValue("name"))
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeflateFullyResponse{LatencyMS: float64(d) / float64(time.Millisecond)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrVMNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrVMExists):
		code = http.StatusConflict
	case errors.Is(err, ErrNoCapacity):
		code = http.StatusInsufficientStorage
	case errors.Is(err, ErrNodeNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrMigrationFailed):
		code = http.StatusConflict
	case errors.Is(err, ErrStaleEpoch):
		code = http.StatusPreconditionFailed
	case errors.Is(err, substrate.ErrKindMismatch):
		code = http.StatusUnprocessableEntity
	}
	http.Error(w, err.Error(), code)
}

// RemoteNode implements Node over a ControllerAPI endpoint, letting the
// centralized manager drive servers across the network exactly as the
// paper's deployment does.
//
// Unlike a naive HTTP client, RemoteNode assumes the network fails: every
// operation runs under a per-attempt context deadline (RetryPolicy.OpTimeout
// — replacing the old single flat 30 s client timeout), idempotent
// operations (State, Release, Deflate) retry with capped exponential backoff
// plus jitter, and deflate requests carry idempotency keys so a retried
// deflate never double-reclaims. Launch is not idempotent and never retries.
type RemoteNode struct {
	baseURL string
	client  *http.Client
	name    string
	retry   RetryPolicy

	substrateMu sync.Mutex
	substrate   string // cached agent substrate kind ("" = not yet learned)

	mu      sync.Mutex
	rng     *rand.Rand // backoff jitter + idempotency key entropy
	idemSeq uint64
	epoch   uint64               // fencing epoch stamped on every request (0 = unfenced)
	leader  string               // leader identity stamped alongside the epoch
	retries int                  // lifetime retry count, for tests and metrics
	lastErr error                // most recent transport error, recorded distinctly
	tel     *remoteNodeTelemetry // nil = no instrumentation

	sleep func(time.Duration) // test seam; time.Sleep by default
}

// NewRemoteNode connects to a controller endpoint with the default retry
// policy and caches its name.
func NewRemoteNode(baseURL string) (*RemoteNode, error) {
	return NewRemoteNodeWithPolicy(baseURL, RetryPolicy{})
}

// NewRemoteNodeWithPolicy connects with an explicit retry policy.
func NewRemoteNodeWithPolicy(baseURL string, policy RetryPolicy) (*RemoteNode, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("cluster: empty controller URL")
	}
	h := fnv.New64a()
	h.Write([]byte(baseURL))
	n := &RemoteNode{
		baseURL: baseURL,
		client:  &http.Client{},
		retry:   policy.withDefaults(),
		rng:     rand.New(rand.NewSource(int64(h.Sum64()))),
		sleep:   time.Sleep,
	}
	st, err := n.State()
	if err != nil {
		return nil, fmt.Errorf("cluster: connecting to %s: %w", baseURL, err)
	}
	n.name = st.Name
	n.substrate = st.Substrate
	return n, nil
}

// NewRemoteNodeNamed builds a client for a controller whose name is
// already known — a registration request or a journaled node-add record —
// WITHOUT probing the endpoint. The node may be temporarily unreachable
// (recovery during a partition must not orphan its placements); every
// operation fails soft until it answers, exactly like any other transient
// network failure.
func NewRemoteNodeNamed(name, baseURL string, policy RetryPolicy) *RemoteNode {
	h := fnv.New64a()
	h.Write([]byte(baseURL))
	return &RemoteNode{
		baseURL: baseURL,
		client:  &http.Client{},
		name:    name,
		retry:   policy.withDefaults(),
		rng:     rand.New(rand.NewSource(int64(h.Sum64()))),
		sleep:   time.Sleep,
	}
}

// BaseURL returns the controller endpoint this client talks to.
func (n *RemoteNode) BaseURL() string { return n.baseURL }

// SetEpoch sets the fencing epoch stamped (as X-Deflation-Epoch) onto every
// subsequent request. The manager calls this when it becomes leader; the
// controller refuses mutations from lower epochs.
func (n *RemoteNode) SetEpoch(epoch uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epoch = epoch
}

// SetLeaderID sets the leader identity stamped (as X-Deflation-Leader)
// alongside the epoch, breaking same-epoch ties at the controller's guard.
func (n *RemoteNode) SetLeaderID(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.leader = id
}

// FencedEpoch reports the highest leadership epoch the remote controller
// has obeyed. The probe is deliberately unfenced (no epoch header): a
// manager assuming leadership must be able to read the cluster-wide fenced
// maximum even while its own last term is already stale.
func (n *RemoteNode) FencedEpoch() (uint64, error) {
	hz, err := probeHealthz(n.client, n.baseURL, n.retry.OpTimeout)
	return hz.FencedEpoch, err
}

// probeHealthz fetches a controller's healthz without asserting any epoch.
// Shared by FencedEpoch and the standby's leader-death corroboration — in
// both cases the caller must see the guard's state without contending for
// leadership or being refused for holding a stale term.
func probeHealthz(client *http.Client, baseURL string, timeout time.Duration) (HealthzResponse, error) {
	var hz HealthzResponse
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/healthz", nil)
	if err != nil {
		return hz, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return hz, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return hz, fmt.Errorf("cluster: healthz probe: %s", resp.Status)
	}
	return hz, json.NewDecoder(resp.Body).Decode(&hz)
}

// Retries returns the lifetime number of retry attempts this client has
// made (not counting first attempts).
func (n *RemoteNode) Retries() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.retries
}

// LastTransportErr returns the most recent transport-level failure observed
// (nil if none). It is recorded distinctly from application-level errors
// like ErrVMNotFound so callers can tell "unreachable" from "gone".
func (n *RemoteNode) LastTransportErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastErr
}

// drainClose drains and closes an HTTP response body so the keep-alive
// connection can be reused rather than torn down.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	body.Close()
}

// attempt performs one HTTP round trip under the per-operation deadline and
// hands the response to handle. Transport failures come back wrapped as
// retryable transport errors.
func (n *RemoteNode) attempt(method, path string, body []byte, hdr http.Header, handle func(*http.Response) error) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.retry.OpTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, n.baseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	n.mu.Lock()
	epoch, leader := n.epoch, n.leader
	n.mu.Unlock()
	if epoch > 0 {
		req.Header.Set(epochHeader, strconv.FormatUint(epoch, 10))
		if leader != "" {
			req.Header.Set(leaderHeader, leader)
		}
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := n.client.Do(req)
	if err != nil {
		n.mu.Lock()
		n.lastErr = err
		tel := n.tel
		n.mu.Unlock()
		if tel != nil {
			tel.transportErrors.Inc()
		}
		return transportFailure(err)
	}
	defer drainClose(resp.Body)
	return handle(resp)
}

// withRetry runs op under the retry policy. Only retryable failures
// (transport errors, 5xx) are retried, with exponential backoff and jitter;
// non-idempotent callers pass retry=false and get exactly one attempt.
// opName labels the RPC latency histogram; the observation covers all
// attempts including backoff, i.e. the latency the manager actually paid.
func (n *RemoteNode) withRetry(opName string, retryOK bool, op func() error) error {
	defer n.observeRPC(opName, time.Now())
	attempts := n.retry.MaxAttempts
	if !retryOK {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			n.mu.Lock()
			d := n.retry.backoff(i-1, n.rng)
			n.retries++
			tel := n.tel
			n.mu.Unlock()
			if tel != nil {
				tel.retries.Inc()
			}
			n.sleep(d)
		}
		err = op()
		if err == nil || !isRetryable(err) {
			return err
		}
	}
	return err
}

// State fetches the remote controller's full state, retrying transient
// failures.
func (n *RemoteNode) State() (NodeState, error) {
	var st NodeState
	err := n.withRetry("state", true, func() error {
		return n.attempt(http.MethodGet, "/v1/state", nil, nil, func(resp *http.Response) error {
			if resp.StatusCode != http.StatusOK {
				return statusError("state", resp.Status, resp.StatusCode)
			}
			return json.NewDecoder(resp.Body).Decode(&st)
		})
	})
	return st, err
}

// SubstrateKind reports the agent's substrate kind as self-reported through
// its /v1/state. A node's substrate never changes over its lifetime, so the
// first successful answer is cached; until one arrives (probe-free
// NewRemoteNodeNamed construction, agent unreachable) it returns "" and the
// manager's placement treats the node as compatible with every spec — the
// agent's own Spawn is the authoritative check.
func (n *RemoteNode) SubstrateKind() string {
	n.substrateMu.Lock()
	cached := n.substrate
	n.substrateMu.Unlock()
	if cached != "" {
		return cached
	}
	st, err := n.State()
	if err != nil {
		return ""
	}
	n.substrateMu.Lock()
	n.substrate = st.Substrate
	n.substrateMu.Unlock()
	return st.Substrate
}

// Ping implements Node with a single non-retried liveness probe: the health
// monitor counts consecutive misses itself, so retrying here would only
// mask real failures.
func (n *RemoteNode) Ping() error {
	defer n.observeRPC("ping", time.Now())
	return n.attempt(http.MethodGet, "/v1/healthz", nil, nil, func(resp *http.Response) error {
		if resp.StatusCode != http.StatusOK {
			return statusError("healthz", resp.Status, resp.StatusCode)
		}
		return nil
	})
}

// Name implements Node.
func (n *RemoteNode) Name() string { return n.name }

// Launch implements Node. Launch is not idempotent (a replay could place
// the VM twice), so it never retries; it still runs under the per-attempt
// deadline.
func (n *RemoteNode) Launch(spec LaunchSpec) (LaunchReport, error) {
	var rep LaunchReport
	if spec.NewApp != nil {
		return rep, fmt.Errorf("cluster: remote launch of %q cannot carry NewApp; use AppKind", spec.Name)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return rep, err
	}
	err = n.withRetry("launch", false, func() error {
		return n.attempt(http.MethodPost, "/v1/vms", body, nil, func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusCreated:
				return json.NewDecoder(resp.Body).Decode(&rep)
			case http.StatusConflict:
				return fmt.Errorf("%w: %q", ErrVMExists, spec.Name)
			case http.StatusInsufficientStorage:
				return fmt.Errorf("%w: remote %s", ErrNoCapacity, n.name)
			default:
				return statusError("remote launch", resp.Status, resp.StatusCode)
			}
		})
	})
	return rep, err
}

// Release implements Node. Deleting a VM is idempotent, so Release retries;
// a 404 on a retry that follows a transport failure is treated as success
// (the earlier attempt applied and only the response was lost).
func (n *RemoteNode) Release(name string) error {
	sawTransportFailure := false
	return n.withRetry("release", true, func() error {
		err := n.attempt(http.MethodDelete, "/v1/vms/"+name, nil, nil, func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusNoContent:
				return nil
			case http.StatusNotFound:
				if sawTransportFailure {
					return nil
				}
				return fmt.Errorf("%w: %q", ErrVMNotFound, name)
			default:
				return statusError("remote release", resp.Status, resp.StatusCode)
			}
		})
		if isTransportFailure(err) {
			sawTransportFailure = true
		}
		return err
	})
}

// nextIdemKey mints a unique idempotency key for one logical deflate.
func (n *RemoteNode) nextIdemKey() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.idemSeq++
	return fmt.Sprintf("defl-%d-%08x", n.idemSeq, n.rng.Uint32())
}

// Deflate asks the remote controller to deflate one VM. The request carries
// an idempotency key, so retries after lost responses replay the recorded
// outcome server-side instead of reclaiming twice.
func (n *RemoteNode) Deflate(vmName string, target restypes.Vector) (DeflateVMResponse, error) {
	var out DeflateVMResponse
	body, err := json.Marshal(DeflateVMRequest{Target: target})
	if err != nil {
		return out, err
	}
	hdr := http.Header{"Idempotency-Key": []string{n.nextIdemKey()}}
	err = n.withRetry("deflate", true, func() error {
		return n.attempt(http.MethodPost, "/v1/vms/"+vmName+"/deflate", body, hdr, func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusOK:
				return json.NewDecoder(resp.Body).Decode(&out)
			case http.StatusNotFound:
				return fmt.Errorf("%w: %q", ErrVMNotFound, vmName)
			default:
				return statusError("remote deflate", resp.Status, resp.StatusCode)
			}
		})
	})
	return out, err
}

// Inventory implements InventoryNode over the wire: the remote server's
// actual VM list, or a transport error when it is unreachable (the
// reconciler then keeps the journaled view rather than guessing).
func (n *RemoteNode) Inventory() ([]VMState, error) {
	st, err := n.State()
	if err != nil {
		return nil, err
	}
	return st.VMs, nil
}

// Has implements Node. A definitive "not running here" is (false, nil); an
// unreachable controller returns the transport error so the caller never
// mistakes a dead network for a dead VM.
func (n *RemoteNode) Has(name string) (bool, error) {
	st, err := n.State()
	if err != nil {
		return false, fmt.Errorf("cluster: has %q: %w", name, err)
	}
	for _, v := range st.VMs {
		if v.Name == name {
			return true, nil
		}
	}
	return false, nil
}

// Free implements Node.
func (n *RemoteNode) Free() restypes.Vector {
	return n.stateVector(func(s NodeState) restypes.Vector { return s.Free })
}

// Availability implements Node.
func (n *RemoteNode) Availability() restypes.Vector {
	return n.stateVector(func(s NodeState) restypes.Vector { return s.Availability })
}

// PreemptableCeiling implements Node.
func (n *RemoteNode) PreemptableCeiling() restypes.Vector {
	return n.stateVector(func(s NodeState) restypes.Vector { return s.PreemptableCeiling })
}

func (n *RemoteNode) stateVector(f func(NodeState) restypes.Vector) restypes.Vector {
	st, err := n.State()
	if err != nil {
		return restypes.Vector{} // unreachable server offers nothing
	}
	return f(st)
}

// Mode implements Node.
func (n *RemoteNode) Mode() Mode {
	st, err := n.State()
	if err != nil || st.Mode != ModePreemptionOnly.String() {
		return ModeDeflation
	}
	return ModePreemptionOnly
}

// Overcommitment implements Node.
func (n *RemoteNode) Overcommitment() float64 {
	st, err := n.State()
	if err != nil {
		return 0
	}
	return st.Overcommitment
}

// Preemptions implements Node.
func (n *RemoteNode) Preemptions() int {
	st, err := n.State()
	if err != nil {
		return 0
	}
	return st.Preemptions
}

// Checkpoint implements Node over the wire. Reading a checkpoint does not
// change server state, so it retries. The returned checkpoint carries no
// live application object; the destination rebuilds it from AppKind.
func (n *RemoteNode) Checkpoint(name string) (VMCheckpoint, error) {
	var cp VMCheckpoint
	err := n.withRetry("checkpoint", true, func() error {
		return n.attempt(http.MethodGet, "/v1/vms/"+name+"/checkpoint", nil, nil, func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusOK:
				return json.NewDecoder(resp.Body).Decode(&cp)
			case http.StatusNotFound:
				return fmt.Errorf("%w: %q", ErrVMNotFound, name)
			case http.StatusConflict:
				return fmt.Errorf("%w: checkpoint %q", ErrMigrationFailed, name)
			default:
				return statusError("remote checkpoint", resp.Status, resp.StatusCode)
			}
		})
	})
	return cp, err
}

// RestoreVM implements Node over the wire. Restoring is creation, but a 409
// on a retry that follows a transport failure means the earlier attempt
// landed and only the response was lost — that is success, mirroring
// Release's lost-response handling.
func (n *RemoteNode) RestoreVM(cp VMCheckpoint) error {
	body, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	name := cp.VM.Domain.Name
	sawTransportFailure := false
	return n.withRetry("restore", true, func() error {
		err := n.attempt(http.MethodPost, "/v1/restore", body, nil, func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusCreated:
				return nil
			case http.StatusConflict:
				if sawTransportFailure {
					return nil
				}
				return fmt.Errorf("%w: %q", ErrVMExists, name)
			case http.StatusInsufficientStorage:
				return fmt.Errorf("%w: restoring %q on remote %s", ErrNoCapacity, name, n.name)
			case http.StatusUnprocessableEntity:
				return fmt.Errorf("%w: restoring %q on remote %s", substrate.ErrKindMismatch, name, n.name)
			default:
				return statusError("remote restore", resp.Status, resp.StatusCode)
			}
		})
		if isTransportFailure(err) {
			sawTransportFailure = true
		}
		return err
	})
}

// ReserveStream implements Node over the wire. The server-side reservation
// is idempotent per stream name, so retries are safe.
func (n *RemoteNode) ReserveStream(stream string, rateMBps float64) (float64, error) {
	body, err := json.Marshal(ReserveStreamRequest{RateMBps: rateMBps})
	if err != nil {
		return 0, err
	}
	var out ReserveStreamResponse
	err = n.withRetry("reserve-stream", true, func() error {
		return n.attempt(http.MethodPost, "/v1/streams/"+stream+"/reserve", body, nil, func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusOK:
				return json.NewDecoder(resp.Body).Decode(&out)
			case http.StatusInsufficientStorage:
				return fmt.Errorf("%w: stream %q on remote %s", ErrNoCapacity, stream, n.name)
			default:
				return statusError("remote reserve-stream", resp.Status, resp.StatusCode)
			}
		})
	})
	return out.GrantedMBps, err
}

// ReleaseStream implements Node over the wire; releasing is idempotent.
func (n *RemoteNode) ReleaseStream(stream string) error {
	return n.withRetry("release-stream", true, func() error {
		return n.attempt(http.MethodDelete, "/v1/streams/"+stream, nil, nil, func(resp *http.Response) error {
			if resp.StatusCode != http.StatusNoContent {
				return statusError("remote release-stream", resp.Status, resp.StatusCode)
			}
			return nil
		})
	})
}

// DeflateFully implements Node over the wire. Squeezing a VM to its minimum
// is idempotent in effect (a second squeeze is a no-op), so it retries.
func (n *RemoteNode) DeflateFully(name string) (time.Duration, error) {
	var out DeflateFullyResponse
	err := n.withRetry("deflate-fully", true, func() error {
		return n.attempt(http.MethodPost, "/v1/vms/"+name+"/deflate-fully", nil, nil, func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusOK:
				return json.NewDecoder(resp.Body).Decode(&out)
			case http.StatusNotFound:
				return fmt.Errorf("%w: %q", ErrVMNotFound, name)
			default:
				return statusError("remote deflate-fully", resp.Status, resp.StatusCode)
			}
		})
	})
	return time.Duration(out.LatencyMS * float64(time.Millisecond)), err
}

// ManagerAPI serves the centralized manager over HTTP (cmd/deflated).
type ManagerAPI struct {
	mu       sync.Mutex
	mgr      *Manager
	recovery *RecoveryReport // last recovery outcome, if the manager recovered

	// nodes is dynamic fleet membership (see nodes.go); hbTel counts push
	// heartbeats received.
	nodes nodeAPIState
	hbTel *telemetry.Counter
}

// SetRecovery records the manager's last recovery outcome so /v1/state can
// report it to operators.
func (a *ManagerAPI) SetRecovery(rep *RecoveryReport) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recovery = rep
}

// NewManagerAPI wraps a manager.
func NewManagerAPI(mgr *Manager) (*ManagerAPI, error) {
	if mgr == nil {
		return nil, fmt.Errorf("cluster: nil manager")
	}
	return &ManagerAPI{mgr: mgr}, nil
}

// LaunchResponse reports where a VM landed and what was reclaimed.
type LaunchResponse struct {
	Server string       `json:"server"`
	Report LaunchReport `json:"report"`
}

// ClusterState is the manager's aggregate view.
type ClusterState struct {
	VMs                int         `json:"vms"`
	Rejected           int         `json:"rejected"`
	Preemptions        int         `json:"preemptions"`
	Servers            []NodeState `json:"servers,omitempty"`
	MeanOC             float64     `json:"mean_overcommitment"`
	MaxOC              float64     `json:"max_overcommitment"`
	DeadServers        int         `json:"dead_servers,omitempty"`
	FailurePreemptions int         `json:"failure_preemptions,omitempty"`
	ReplacedVMs        int         `json:"replaced_vms,omitempty"`
	LostVMs            int         `json:"lost_vms,omitempty"`
}

// ProbeHealth runs one heartbeat round under the API lock; cmd/deflated
// calls it periodically.
func (a *ManagerAPI) ProbeHealth() []HealthEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.mgr.ProbeHealth()
}

// Handler returns the manager's routes:
//
//	POST   /v1/vms        — LaunchSpec → LaunchResponse
//	DELETE /v1/vms/{name} — release
//	GET    /v1/cluster    — ClusterState
//	GET    /v1/state      — ManagerStateResponse (durable-state debugging)
//	POST   /v1/nodes      — RegisterNodeRequest → RegisterNodeResponse
//	GET    /v1/nodes      — NodeListResponse
//	POST   /v1/nodes/{name}/heartbeat — agent push heartbeat (204/404)
func (a *ManagerAPI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/vms", a.handleLaunch)
	mux.HandleFunc("DELETE /v1/vms/{name}", a.handleRelease)
	mux.HandleFunc("GET /v1/cluster", a.handleCluster)
	mux.HandleFunc("GET /v1/state", a.handleState)
	mux.HandleFunc("POST /v1/migrate", a.handleMigrate)
	mux.HandleFunc("POST /v1/nodes", a.handleRegisterNode)
	mux.HandleFunc("GET /v1/nodes", a.handleListNodes)
	mux.HandleFunc("DELETE /v1/nodes/{name}", a.handleForgetNode)
	mux.HandleFunc("POST /v1/nodes/{name}/heartbeat", a.handleNodeHeartbeat)
	mux.HandleFunc("GET "+replicaWALPath, a.handleReplicaWAL)
	return mux
}

// handleReplicaWAL streams WAL records after the follower's applied
// sequence (?after=SEQ) — the leader half of hot-standby replication. 404
// when this manager runs without a journal (nothing to replicate).
func (a *ManagerAPI) handleReplicaWAL(w http.ResponseWriter, r *http.Request) {
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil && r.URL.Query().Get("after") != "" {
		http.Error(w, "cluster: bad after param: "+err.Error(), http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	j := a.mgr.Journal()
	a.mu.Unlock()
	if j == nil {
		http.Error(w, "cluster: manager is not durable; no WAL to replicate", http.StatusNotFound)
		return
	}
	batch, err := j.RecordsAfter(after)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, batch)
}

// refuseUnservable refuses a mutating command (503, response written) when
// the manager can no longer stand behind it: the journal has fail-stopped
// (an acknowledgement would promise durability the WAL cannot back) or the
// manager has been deposed by a newer leader (every node RPC it issues is
// refused anyway). Called with a.mu held.
func (a *ManagerAPI) refuseUnservable(w http.ResponseWriter) bool {
	if err := a.mgr.WALError(); err != nil {
		http.Error(w, "cluster: journal fail-stopped; manager cannot durably back commands: "+err.Error(),
			http.StatusServiceUnavailable)
		return true
	}
	if a.mgr.Deposed() {
		http.Error(w, "cluster: manager deposed by a newer leadership epoch; standing down",
			http.StatusServiceUnavailable)
		return true
	}
	return false
}

// MigrateRequest names a placed VM and its destination server.
type MigrateRequest struct {
	VM   string `json:"vm"`
	Dest string `json:"dest"`
}

func (a *ManagerAPI) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "cluster: bad migrate request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.VM == "" || req.Dest == "" {
		http.Error(w, "cluster: migrate needs vm and dest", http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	if a.refuseUnservable(w) {
		a.mu.Unlock()
		return
	}
	rep, err := a.mgr.Migrate(req.VM, req.Dest)
	walErr := a.mgr.WALError()
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	if walErr != nil {
		// This very command poisoned the journal: it applied in memory but
		// has no durable backing — refuse to acknowledge it.
		http.Error(w, "cluster: journal write failed; command not durably recorded: "+walErr.Error(),
			http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (a *ManagerAPI) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var spec LaunchSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "cluster: bad launch spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	if a.refuseUnservable(w) {
		a.mu.Unlock()
		return
	}
	idx, rep, err := a.mgr.Launch(spec)
	var server string
	if idx >= 0 {
		server = a.mgr.Servers()[idx].Name()
	}
	walErr := a.mgr.WALError()
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	if walErr != nil {
		http.Error(w, "cluster: journal write failed; launch not durably recorded: "+walErr.Error(),
			http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusCreated, LaunchResponse{Server: server, Report: rep})
}

func (a *ManagerAPI) handleRelease(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	if a.refuseUnservable(w) {
		a.mu.Unlock()
		return
	}
	err := a.mgr.Release(r.PathValue("name"))
	walErr := a.mgr.WALError()
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	if walErr != nil {
		http.Error(w, "cluster: journal write failed; release not durably recorded: "+walErr.Error(),
			http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// JournalStatus is the wire form of the manager's journal state.
type JournalStatus struct {
	Dir             string  `json:"dir"`
	Seq             uint64  `json:"seq"`
	Appended        uint64  `json:"records_appended"`
	Fsyncs          uint64  `json:"fsyncs"`
	AppendErrors    uint64  `json:"append_errors,omitempty"`
	SnapshotSeq     uint64  `json:"snapshot_seq"`
	SnapshotBytes   int     `json:"snapshot_bytes"`
	SnapshotAgeSecs float64 `json:"snapshot_age_seconds"`
}

// Manager roles reported by /v1/state.
const (
	RoleLeader  = "leader"
	RoleStandby = "standby"
)

// ManagerStateResponse is the manager's durable-state view for operator
// debugging (deflctl state): current placements, journal position, last
// snapshot age, and the last recovery's report when the manager recovered.
// A standby answers with Role "standby" and its replication status instead
// of a journal.
type ManagerStateResponse struct {
	Placements map[string]string `json:"placements"`
	VMs        int               `json:"vms"`
	Durable    bool              `json:"durable"`
	// Role distinguishes the acting leader from a tailing standby; empty on
	// managers predating HA.
	Role string `json:"role,omitempty"`
	// Epoch is the manager's leadership fencing epoch (0 = unfenced).
	Epoch uint64 `json:"epoch,omitempty"`
	// Substrates maps server name → substrate kind, so operators can see
	// which nodes host hypervisor VMs vs cgroup containers. Absent on
	// managers predating multi-substrate support.
	Substrates  map[string]string  `json:"substrates,omitempty"`
	Journal     *JournalStatus     `json:"journal,omitempty"`
	Recovery    *RecoveryReport    `json:"recovery,omitempty"`
	Replication *ReplicationStatus `json:"replication,omitempty"`
}

func (a *ManagerAPI) handleState(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	resp := ManagerStateResponse{
		Placements: a.mgr.Placements(),
		Recovery:   a.recovery,
		Role:       RoleLeader,
		Epoch:      a.mgr.Epoch(),
		Substrates: a.mgr.Substrates(),
	}
	resp.VMs = len(resp.Placements)
	if j := a.mgr.Journal(); j != nil {
		resp.Durable = true
		st := j.Stats()
		js := &JournalStatus{
			Dir:           j.Dir(),
			Seq:           st.Seq,
			Appended:      st.Appended,
			Fsyncs:        st.Fsyncs,
			AppendErrors:  st.AppendErrors,
			SnapshotSeq:   st.SnapshotSeq,
			SnapshotBytes: st.SnapshotBytes,
		}
		if !st.SnapshotTime.IsZero() {
			js.SnapshotAgeSecs = time.Since(st.SnapshotTime).Seconds()
		}
		resp.Journal = js
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *ManagerAPI) handleCluster(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := a.mgr.Snapshot()
	st := ClusterState{
		VMs:                snap.VMs,
		Rejected:           a.mgr.Rejected(),
		Preemptions:        a.mgr.Preemptions(),
		MeanOC:             snap.MeanOvercommitment,
		MaxOC:              snap.MaxOvercommitment,
		DeadServers:        snap.DeadServers,
		FailurePreemptions: snap.FailurePreemptions,
		ReplacedVMs:        snap.ReplacedVMs,
		LostVMs:            snap.LostVMs,
	}
	if r.URL.Query().Get("servers") == "true" {
		for _, n := range a.mgr.Servers() {
			if lc, ok := n.(*LocalController); ok {
				api := ControllerAPI{ctrl: lc}
				st.Servers = append(st.Servers, api.state())
			} else if rn, ok := n.(*RemoteNode); ok {
				if s, err := rn.State(); err == nil {
					st.Servers = append(st.Servers, s)
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, st)
}
