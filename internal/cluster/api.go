package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"deflation/internal/restypes"
)

// The REST control plane of §5: "the centralized cluster manager and the
// local-controllers... communicate with each other via a REST API". The
// ControllerAPI exposes one server's LocalController; RemoteNode is the
// manager-side client implementing Node over HTTP; ManagerAPI exposes the
// centralized manager to operators (cmd/deflctl).

// NodeState is the wire form of a server's capacity state.
type NodeState struct {
	Name               string          `json:"name"`
	Mode               string          `json:"mode"`
	Free               restypes.Vector `json:"free"`
	Availability       restypes.Vector `json:"availability"`
	PreemptableCeiling restypes.Vector `json:"preemptable_ceiling"`
	Overcommitment     float64         `json:"overcommitment"`
	Preemptions        int             `json:"preemptions"`
	VMs                []VMState       `json:"vms"`
}

// VMState is the wire form of one VM's state.
type VMState struct {
	Name       string          `json:"name"`
	Priority   string          `json:"priority"`
	Size       restypes.Vector `json:"size"`
	Allocation restypes.Vector `json:"allocation"`
	MinSize    restypes.Vector `json:"min_size"`
	Throughput float64         `json:"throughput"`
	App        string          `json:"app"`
}

// ControllerAPI serves a LocalController over HTTP. Handlers serialize all
// controller access through a mutex: the controller itself is
// single-threaded by design.
type ControllerAPI struct {
	mu   sync.Mutex
	ctrl *LocalController
}

// NewControllerAPI wraps a controller.
func NewControllerAPI(ctrl *LocalController) (*ControllerAPI, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("cluster: nil controller")
	}
	return &ControllerAPI{ctrl: ctrl}, nil
}

// Handler returns the controller's routes:
//
//	GET    /v1/state            — NodeState
//	POST   /v1/vms              — LaunchSpec body → LaunchReport
//	DELETE /v1/vms/{name}       — release
//	POST   /v1/vms/{name}/deflate  — {"target": Vector} → cascade report
func (a *ControllerAPI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/state", a.handleState)
	mux.HandleFunc("POST /v1/vms", a.handleLaunch)
	mux.HandleFunc("DELETE /v1/vms/{name}", a.handleRelease)
	mux.HandleFunc("POST /v1/vms/{name}/deflate", a.handleDeflate)
	return mux
}

func (a *ControllerAPI) state() NodeState {
	c := a.ctrl
	st := NodeState{
		Name:               c.Name(),
		Mode:               c.Mode().String(),
		Free:               c.Free(),
		Availability:       c.Availability(),
		PreemptableCeiling: c.PreemptableCeiling(),
		Overcommitment:     c.Overcommitment(),
		Preemptions:        c.Preemptions(),
	}
	for _, v := range c.VMs() {
		st.VMs = append(st.VMs, VMState{
			Name:       v.Name(),
			Priority:   v.Priority().String(),
			Size:       v.Size(),
			Allocation: v.Allocation(),
			MinSize:    v.MinSize(),
			Throughput: v.Throughput(),
			App:        v.App().Name(),
		})
	}
	return st
}

func (a *ControllerAPI) handleState(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	st := a.state()
	a.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (a *ControllerAPI) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var spec LaunchSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "cluster: bad launch spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	rep, err := a.ctrl.Launch(spec)
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, rep)
}

func (a *ControllerAPI) handleRelease(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	err := a.ctrl.Release(r.PathValue("name"))
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// DeflateVMRequest asks a controller to deflate one VM by a target vector.
type DeflateVMRequest struct {
	Target restypes.Vector `json:"target"`
}

// DeflateVMResponse reports the cascade outcome.
type DeflateVMResponse struct {
	NewAllocation restypes.Vector `json:"new_allocation"`
	Shortfall     restypes.Vector `json:"shortfall"`
	LatencyMS     float64         `json:"latency_ms"`
}

func (a *ControllerAPI) handleDeflate(w http.ResponseWriter, r *http.Request) {
	var req DeflateVMRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "cluster: bad deflate request: "+err.Error(), http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	v, err := a.ctrl.VM(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	rep, err := a.ctrl.casc.Deflate(v, req.Target)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeflateVMResponse{
		NewAllocation: rep.NewAllocation,
		Shortfall:     rep.Shortfall,
		LatencyMS:     float64(rep.TotalLatency) / float64(time.Millisecond),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrVMNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrVMExists):
		code = http.StatusConflict
	case errors.Is(err, ErrNoCapacity):
		code = http.StatusInsufficientStorage
	}
	http.Error(w, err.Error(), code)
}

// RemoteNode implements Node over a ControllerAPI endpoint, letting the
// centralized manager drive servers across the network exactly as the
// paper's deployment does.
type RemoteNode struct {
	baseURL string
	client  *http.Client
	name    string
}

// NewRemoteNode connects to a controller endpoint and caches its name.
func NewRemoteNode(baseURL string) (*RemoteNode, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("cluster: empty controller URL")
	}
	n := &RemoteNode{baseURL: baseURL, client: &http.Client{Timeout: 30 * time.Second}}
	st, err := n.State()
	if err != nil {
		return nil, fmt.Errorf("cluster: connecting to %s: %w", baseURL, err)
	}
	n.name = st.Name
	return n, nil
}

// State fetches the remote controller's full state.
func (n *RemoteNode) State() (NodeState, error) {
	var st NodeState
	resp, err := n.client.Get(n.baseURL + "/v1/state")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("cluster: state: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// Name implements Node.
func (n *RemoteNode) Name() string { return n.name }

// Launch implements Node.
func (n *RemoteNode) Launch(spec LaunchSpec) (LaunchReport, error) {
	var rep LaunchReport
	if spec.NewApp != nil {
		return rep, fmt.Errorf("cluster: remote launch of %q cannot carry NewApp; use AppKind", spec.Name)
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return rep, err
	}
	resp, err := n.client.Post(n.baseURL+"/v1/vms", "application/json", bytes.NewReader(body))
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
		err = json.NewDecoder(resp.Body).Decode(&rep)
		return rep, err
	case http.StatusConflict:
		return rep, fmt.Errorf("%w: %q", ErrVMExists, spec.Name)
	case http.StatusInsufficientStorage:
		return rep, fmt.Errorf("%w: remote %s", ErrNoCapacity, n.name)
	default:
		return rep, fmt.Errorf("cluster: remote launch: %s", resp.Status)
	}
}

// Release implements Node.
func (n *RemoteNode) Release(name string) error {
	req, err := http.NewRequest(http.MethodDelete, n.baseURL+"/v1/vms/"+name, nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("%w: %q", ErrVMNotFound, name)
	default:
		return fmt.Errorf("cluster: remote release: %s", resp.Status)
	}
}

// Has implements Node.
func (n *RemoteNode) Has(name string) bool {
	st, err := n.State()
	if err != nil {
		return false
	}
	for _, v := range st.VMs {
		if v.Name == name {
			return true
		}
	}
	return false
}

// Free implements Node.
func (n *RemoteNode) Free() restypes.Vector {
	return n.stateVector(func(s NodeState) restypes.Vector { return s.Free })
}

// Availability implements Node.
func (n *RemoteNode) Availability() restypes.Vector {
	return n.stateVector(func(s NodeState) restypes.Vector { return s.Availability })
}

// PreemptableCeiling implements Node.
func (n *RemoteNode) PreemptableCeiling() restypes.Vector {
	return n.stateVector(func(s NodeState) restypes.Vector { return s.PreemptableCeiling })
}

func (n *RemoteNode) stateVector(f func(NodeState) restypes.Vector) restypes.Vector {
	st, err := n.State()
	if err != nil {
		return restypes.Vector{} // unreachable server offers nothing
	}
	return f(st)
}

// Mode implements Node.
func (n *RemoteNode) Mode() Mode {
	st, err := n.State()
	if err != nil || st.Mode != ModePreemptionOnly.String() {
		return ModeDeflation
	}
	return ModePreemptionOnly
}

// Overcommitment implements Node.
func (n *RemoteNode) Overcommitment() float64 {
	st, err := n.State()
	if err != nil {
		return 0
	}
	return st.Overcommitment
}

// Preemptions implements Node.
func (n *RemoteNode) Preemptions() int {
	st, err := n.State()
	if err != nil {
		return 0
	}
	return st.Preemptions
}

// ManagerAPI serves the centralized manager over HTTP (cmd/deflated).
type ManagerAPI struct {
	mu  sync.Mutex
	mgr *Manager
}

// NewManagerAPI wraps a manager.
func NewManagerAPI(mgr *Manager) (*ManagerAPI, error) {
	if mgr == nil {
		return nil, fmt.Errorf("cluster: nil manager")
	}
	return &ManagerAPI{mgr: mgr}, nil
}

// LaunchResponse reports where a VM landed and what was reclaimed.
type LaunchResponse struct {
	Server string       `json:"server"`
	Report LaunchReport `json:"report"`
}

// ClusterState is the manager's aggregate view.
type ClusterState struct {
	VMs         int         `json:"vms"`
	Rejected    int         `json:"rejected"`
	Preemptions int         `json:"preemptions"`
	Servers     []NodeState `json:"servers,omitempty"`
	MeanOC      float64     `json:"mean_overcommitment"`
	MaxOC       float64     `json:"max_overcommitment"`
}

// Handler returns the manager's routes:
//
//	POST   /v1/vms        — LaunchSpec → LaunchResponse
//	DELETE /v1/vms/{name} — release
//	GET    /v1/cluster    — ClusterState
func (a *ManagerAPI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/vms", a.handleLaunch)
	mux.HandleFunc("DELETE /v1/vms/{name}", a.handleRelease)
	mux.HandleFunc("GET /v1/cluster", a.handleCluster)
	return mux
}

func (a *ManagerAPI) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var spec LaunchSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "cluster: bad launch spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	idx, rep, err := a.mgr.Launch(spec)
	var server string
	if idx >= 0 {
		server = a.mgr.Servers()[idx].Name()
	}
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, LaunchResponse{Server: server, Report: rep})
}

func (a *ManagerAPI) handleRelease(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	err := a.mgr.Release(r.PathValue("name"))
	a.mu.Unlock()
	if err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *ManagerAPI) handleCluster(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := a.mgr.Snapshot()
	st := ClusterState{
		VMs:         snap.VMs,
		Rejected:    a.mgr.Rejected(),
		Preemptions: a.mgr.Preemptions(),
		MeanOC:      snap.MeanOvercommitment,
		MaxOC:       snap.MaxOvercommitment,
	}
	if r.URL.Query().Get("servers") == "true" {
		for _, n := range a.mgr.Servers() {
			if lc, ok := n.(*LocalController); ok {
				api := ControllerAPI{ctrl: lc}
				st.Servers = append(st.Servers, api.state())
			} else if rn, ok := n.(*RemoteNode); ok {
				if s, err := rn.State(); err == nil {
					st.Servers = append(st.Servers, s)
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, st)
}
