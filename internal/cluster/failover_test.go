package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"deflation/internal/cascade"
	"deflation/internal/faults"
	"deflation/internal/hypervisor"
	"deflation/internal/journal"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

// newFencedCluster mirrors newCrashableCluster but wraps every node in an
// epoch guard, and hands back a factory so each leadership term gets its own
// wrapper set over the shared guards — the HA deployment shape.
func newFencedCluster(t *testing.T, n int) ([]*crashableNode, func() []Node) {
	t.Helper()
	nodes := make([]*crashableNode, n)
	guards := make([]*EpochGuard, n)
	for i := range nodes {
		h, err := hypervisor.NewHost(hypervisor.Config{
			Name:     fmt.Sprintf("s%d", i),
			Capacity: restypes.V(16, 65536, 400, 400),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = newCrashableNode(NewLocalController(h, cascade.AllLevels(), ModeDeflation))
		guards[i] = &EpochGuard{}
	}
	return nodes, func() []Node {
		term := make([]Node, n)
		for i := range nodes {
			term[i] = newFencedNode(nodes[i], guards[i])
		}
		return term
	}
}

// replicaFromJournal reads the standby's warm replica out of the leader's
// journal — the snapshot-plus-tail batch stream a Follower applies, at zero
// lag.
func replicaFromJournal(t *testing.T, j *journal.Journal) *WALState {
	t.Helper()
	st := NewWALState()
	b, err := j.RecordsAfter(0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Snapshot != nil {
		if err := json.Unmarshal(b.Snapshot, st); err != nil {
			t.Fatal(err)
		}
		if st.AppliedSeq < b.SnapshotSeq {
			st.AppliedSeq = b.SnapshotSeq
		}
	}
	for _, rec := range b.Records {
		if err := st.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// failoverSteps drives a leader through every journaled transition kind —
// launches, a release, both migration outcomes, a rejection, a node death
// with eviction and re-placement, and an empty rejoin. The property test
// kills the leader after each step.
func failoverSteps(t *testing.T, nodes []*crashableNode) []func(m *Manager) {
	t.Helper()
	mustLaunch := func(m *Manager, spec LaunchSpec) {
		if _, _, err := m.Launch(spec); err != nil {
			t.Fatal(err)
		}
	}
	migrateOff := func(m *Manager, name string) string {
		src := m.Placements()[name]
		for _, s := range m.Servers() {
			if s.Name() != src {
				return s.Name()
			}
		}
		t.Fatalf("no migration target for %s", name)
		return ""
	}
	return []func(m *Manager){
		func(m *Manager) { mustLaunch(m, durSpec("vm-0", vm.LowPriority, 0.25)) },
		func(m *Manager) { mustLaunch(m, durSpec("vm-1", vm.LowPriority, 0.25)) },
		func(m *Manager) { mustLaunch(m, durSpec("vm-2", vm.LowPriority, 0.25)) },
		func(m *Manager) { mustLaunch(m, durSpec("hp-0", vm.HighPriority, 0)) },
		func(m *Manager) {
			if err := m.Release("vm-2"); err != nil {
				t.Fatal(err)
			}
		},
		func(m *Manager) {
			if _, err := m.Migrate("vm-0", migrateOff(m, "vm-0")); err != nil {
				t.Fatal(err)
			}
		},
		func(m *Manager) {
			m.SetMigrationFaults(faults.New(faults.Config{MigrationFailProb: 1, Seed: 5}))
			if _, err := m.Migrate("vm-1", migrateOff(m, "vm-1")); err == nil {
				t.Fatal("fault-injected migration unexpectedly succeeded")
			}
			m.SetMigrationFaults(nil)
		},
		func(m *Manager) {
			huge := durSpec("huge", vm.LowPriority, 1.0)
			huge.Size = restypes.V(1024, 1<<30, 1, 1)
			huge.MinSize = huge.Size
			if _, _, err := m.Launch(huge); err == nil {
				t.Fatal("huge launch unexpectedly admitted")
			}
		},
		func(m *Manager) { nodes[0].crash(); probeUntilDead(t, m) },
		func(m *Manager) { nodes[0].recover(); m.ProbeHealth() },
	}
}

// inventoryByNode maps every VM actually alive in the cluster to the node
// running it (crashed nodes report nothing — their VMs are dead).
func inventoryByNode(t *testing.T, nodes []*crashableNode) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, n := range nodes {
		inv, err := n.Inventory()
		if err != nil {
			continue
		}
		for _, vs := range inv {
			out[vs.Name] = n.Name()
		}
	}
	return out
}

// TestFailoverAtEveryCrashPoint is the HA property test: kill the leader
// after every scripted WAL transition and promote a standby from its warm
// replica. At every crash point the promoted manager must (a) converge to
// exactly the leader's state at death, (b) keep every healthy workload
// running where it was — zero evictions, zero restarts — and (c) fence the
// deposed leader off the cluster with a bumped epoch.
func TestFailoverAtEveryCrashPoint(t *testing.T) {
	nSteps := len(failoverSteps(t, nil)) // script length; closures unused
	for k := 0; k <= nSteps; k++ {
		nodes, termNodes := newFencedCluster(t, 3)
		leader, err := NewManager(termNodes(), BestFit, 7)
		if err != nil {
			t.Fatal(err)
		}
		j, err := journal.Open(t.TempDir(), journal.Options{SyncEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		leader.AttachJournal(j, 1<<30)
		if got := leader.BecomeLeader(); got != 1 {
			t.Fatalf("first term epoch = %d, want 1", got)
		}
		steps := failoverSteps(t, nodes)
		for i := 0; i < k; i++ {
			steps[i](leader)
		}

		// The leader dies here. Freeze ground truth and the standby's
		// replica, then promote.
		before := inventoryByNode(t, nodes)
		st := replicaFromJournal(t, j)
		j.Close()

		m2, rep, err := PromoteStandby(DurabilityConfig{Dir: t.TempDir()},
			st, termNodes(), BestFit, 7)
		if err != nil {
			t.Fatalf("step %d: promote: %v", k, err)
		}

		// (a) Convergence: the replica (and therefore the promoted state)
		// is exactly the leader's WAL state at death, and reconciliation
		// found nothing to repair — the replica was not stale.
		live := leader.walState()
		live.AppliedSeq = st.AppliedSeq
		if !reflect.DeepEqual(*st, *live) {
			t.Fatalf("step %d: replica diverged from leader state:\n%+v\n%+v", k, *st, *live)
		}
		if rep.Lost != 0 || rep.Replaced != 0 || rep.StaleReleased != 0 {
			t.Errorf("step %d: takeover repaired a non-stale replica: %+v", k, rep)
		}

		// (b) No healthy-workload disruption: every VM alive before the
		// takeover is still alive on the same node, and the new term places
		// all of them.
		after := inventoryByNode(t, nodes)
		for name, node := range before {
			if after[name] != node {
				t.Errorf("step %d: healthy VM %s disrupted by takeover (%s -> %q)",
					k, name, node, after[name])
			}
			if !m2.Placed(name) {
				t.Errorf("step %d: alive VM %s not placed after takeover", k, name)
			}
		}

		// (c) Fencing: the new term runs at a higher epoch and the deposed
		// leader's next command is provably refused.
		if m2.Epoch() != 2 {
			t.Errorf("step %d: promoted epoch = %d, want 2", k, m2.Epoch())
		}
		var stale []string
		for name := range leader.Placements() {
			stale = append(stale, name)
		}
		sort.Strings(stale)
		if len(stale) > 0 {
			if err := leader.Release(stale[0]); !errors.Is(err, ErrStaleEpoch) {
				t.Errorf("step %d: deposed leader's release of %s not fenced: %v",
					k, stale[0], err)
			}
		}
	}
}
