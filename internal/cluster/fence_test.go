package cluster

import (
	"errors"
	"net/http"
	"testing"

	"deflation/internal/vm"
)

func TestEpochGuard(t *testing.T) {
	var g EpochGuard
	// Epoch 0 is the unfenced legacy mode — always admitted, never raises.
	if err := g.Check(0, ""); err != nil || g.Current() != 0 {
		t.Fatalf("legacy command rejected: %v (epoch %d)", err, g.Current())
	}
	if err := g.Check(3, "m1"); err != nil {
		t.Fatal(err)
	}
	if g.Current() != 3 {
		t.Fatalf("epoch = %d, want 3", g.Current())
	}
	// Equal epochs from the same leader are retries; higher raises the bar.
	if err := g.Check(3, "m1"); err != nil {
		t.Fatal(err)
	}
	if err := g.Check(5, "m1"); err != nil || g.Current() != 5 {
		t.Fatalf("raise to 5 failed: %v", err)
	}
	// Lower is a deposed leader.
	if err := g.Check(4, "m1"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch admitted: %v", err)
	}
	if err := g.Check(0, ""); err != nil {
		t.Fatalf("legacy command rejected after fencing: %v", err)
	}
	if g.StaleRejections() != 1 {
		t.Errorf("stale rejections = %d, want 1", g.StaleRejections())
	}
}

func TestEpochGuardSameEpochDifferentLeader(t *testing.T) {
	var g EpochGuard
	if err := g.Check(3, "m1"); err != nil {
		t.Fatal(err)
	}
	// The same term self-allocated by a different manager — a crashed
	// leader's restart racing its standby's promotion — is a split-brain
	// tie: exactly one of them may command this node.
	if err := g.Check(3, "m2"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("same-epoch different-leader admitted: %v", err)
	}
	// The loser wins the next term instead.
	if err := g.Check(4, "m2"); err != nil {
		t.Fatal(err)
	}
	// And now the original holder is fenced at its old term.
	if err := g.Check(4, "m1"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("tied-out leader re-admitted: %v", err)
	}
	if g.StaleRejections() != 2 {
		t.Errorf("stale rejections = %d, want 2", g.StaleRejections())
	}
}

func TestFencedNodeSameEpochDualLeader(t *testing.T) {
	ctrl := newServer(t, ModeDeflation)
	guard := &EpochGuard{}
	restarted := newFencedNode(ctrl, guard)
	promoted := newFencedNode(ctrl, guard)
	restarted.SetEpoch(2)
	restarted.SetLeaderID("leader-a")
	promoted.SetEpoch(2)
	promoted.SetLeaderID("leader-b")

	// Whichever manager reaches the node first holds epoch 2; the other is
	// fenced despite presenting the same number.
	if err := restarted.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := promoted.Launch(wireSpec("a", vm.LowPriority)); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("second leader at a tied epoch admitted: %v", err)
	}
	// FencedEpoch lets the loser discover the cluster maximum and take the
	// next term cleanly.
	if e, err := promoted.FencedEpoch(); err != nil || e != 2 {
		t.Fatalf("FencedEpoch = %d, %v; want 2", e, err)
	}
	promoted.SetEpoch(3)
	if _, err := promoted.Launch(wireSpec("a", vm.LowPriority)); err != nil {
		t.Fatalf("next term refused: %v", err)
	}
	if err := restarted.Ping(); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("tied-out leader still admitted: %v", err)
	}
}

func TestFencedNodeRejectsDeposedLeader(t *testing.T) {
	ctrl := newServer(t, ModeDeflation)
	guard := &EpochGuard{}
	oldTerm := newFencedNode(ctrl, guard)
	newTerm := newFencedNode(ctrl, guard)
	oldTerm.SetEpoch(1)
	newTerm.SetEpoch(2)

	if _, err := oldTerm.Launch(wireSpec("a", vm.LowPriority)); err != nil {
		t.Fatal(err)
	}
	// The new leader's ping is the fencing beacon: from here on the old
	// term's mutations are refused while reads still pass.
	if err := newTerm.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := oldTerm.Launch(wireSpec("b", vm.LowPriority)); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale launch admitted: %v", err)
	}
	if err := oldTerm.Release("a"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale release admitted: %v", err)
	}
	if err := oldTerm.Ping(); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale ping admitted: %v", err)
	}
	if free := oldTerm.Free(); free.IsZero() {
		t.Error("deposed leader cannot even read state")
	}
	if ok, err := oldTerm.Has("a"); err != nil || !ok {
		t.Errorf("deposed leader's read failed: %v %v", ok, err)
	}
	if guard.StaleRejections() != 3 {
		t.Errorf("stale rejections = %d, want 3", guard.StaleRejections())
	}
	// The healthy VM survived every stale command.
	if ok, _ := ctrl.Has("a"); !ok {
		t.Error("stale commands disturbed a healthy VM")
	}
}

func TestRemoteNodeFencingOverHTTP(t *testing.T) {
	srv, ctrl := newControllerServer(t)

	oldLeader, err := NewRemoteNode(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	newLeader, err := NewRemoteNode(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	oldLeader.SetEpoch(1)
	newLeader.SetEpoch(2)

	if _, err := oldLeader.Launch(wireSpec("a", vm.LowPriority)); err != nil {
		t.Fatal(err)
	}
	if err := newLeader.Ping(); err != nil {
		t.Fatal(err)
	}
	// The deposed leader's commands come back 412 → ErrStaleEpoch, not
	// retried, and the cluster state is untouched.
	if err := oldLeader.Release("a"); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale release over HTTP: %v, want ErrStaleEpoch", err)
	}
	if err := oldLeader.Ping(); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale ping over HTTP: %v, want ErrStaleEpoch", err)
	}
	if ok, _ := ctrl.Has("a"); !ok {
		t.Error("stale release over HTTP disturbed a healthy VM")
	}
	// Reads are never fenced.
	if _, err := oldLeader.State(); err != nil {
		t.Errorf("deposed leader's state read failed: %v", err)
	}
	// Clients without the epoch header — humans, probes — stay admitted.
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("headerless healthz = %d", resp.StatusCode)
	}
}
