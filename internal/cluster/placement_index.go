package cluster

import (
	"deflation/internal/restypes"
	"deflation/internal/substrate"
	"deflation/internal/vm"
)

// The placement index replaces the manager's O(servers) feasibility scan
// with a segment tree over the fleet, so BestFit / WorstFit / FirstFit and
// the preemption fallback resolve in roughly O(log n) while returning
// BIT-IDENTICAL choices to the linear scans they shadow. The design:
//
//   - Each leaf caches its server's placement vectors (availability, free,
//     preemptable ceiling), their unit directions and norms, and its
//     substrate kind. Leaves go stale only through the controllers'
//     WatchCapacity push notifications — every capacity mutation (launch,
//     release, deflate, reinflate, preempt, stream reservation, crash)
//     runs the watcher, which marks the leaf dirty; dirty leaves are
//     re-read and their root paths recomputed before every query.
//   - Internal nodes hold element-wise maxima (and norm maxima) over their
//     subtrees. Per-dimension max is a selection, and Fits() is monotone
//     per-dimension, so "spec fits the subtree maximum" is an EXACT
//     feasibility bound: pruning a subtree never discards a feasible leaf.
//   - The fitness bound is û·maxDir, where û is the spec's unit demand and
//     maxDir the element-wise max of the leaves' unit placement vectors.
//     All components are non-negative and IEEE multiplication/addition are
//     monotone for non-negative operands, so û·maxDir ≥ û·dir ≥ fitness up
//     to the few-ulp difference between computing cos-similarity as
//     Dot/(|a||b|) versus û·dir. The 1e-9 absolute slack added before
//     pruning dwarfs that ~1e-15 rounding gap while staying far below any
//     meaningful fitness difference, so the bound never wrongly prunes.
//   - Queries descend left to right and evaluate surviving leaves with the
//     SAME expressions the scans use — m.alive(i), feasible(), m.fitness(),
//     PreemptableCeiling().Norm() — read live through m.servers[i], with
//     the same strictly-greater comparisons. Visit order and tie-breaking
//     are therefore identical to the scan; pruning only skips leaves that
//     provably cannot win.
//
// The index is built only when every node supports WatchCapacity (local
// controllers, their crashable wrappers, and fencedNode chains over them).
// Remote fleets and dynamically grown fleets (AddNode/RemoveNode) fall back
// to the linear scans. The index-vs-scan equivalence tests and the fuzz
// target in placement_index_test.go replay identical workloads both ways
// and require identical placements.

// placementIndexEnabled gates index construction; the equivalence tests
// flip it to force the reference scan path.
var placementIndexEnabled = true

// pidxSlack is the absolute slack added to floating-point upper bounds
// before pruning — far above the ~1e-15 recomputation rounding it must
// absorb, far below any meaningful fitness or norm difference.
const pidxSlack = 1e-9

// capacityWatchable is the push-invalidation hook the index needs from
// every node (see LocalController.WatchCapacity).
type capacityWatchable interface {
	WatchCapacity(fn func())
}

// watchableNode unwraps fencedNode chains to reach a WatchCapacity
// provider, mirroring nodeSubstrate's unwrapping. Returns nil when the
// node cannot push invalidations (e.g. RemoteNode).
func watchableNode(n Node) capacityWatchable {
	for {
		if w, ok := n.(capacityWatchable); ok {
			return w
		}
		f, ok := n.(*fencedNode)
		if !ok {
			return nil
		}
		n = f.Node
	}
}

// pidxAgg is one tree node's aggregate: element-wise maxima over its
// subtree's cached leaf values. Padding leaves (beyond the fleet) hold the
// zero aggregate, the identity for max/OR.
type pidxAgg struct {
	maxPV      restypes.Vector // max placement vector (availability or free, per mode)
	maxPVDir   restypes.Vector // max unit placement vector (best-fit fitness bound)
	maxFreeDir restypes.Vector // max unit free vector (free-only fitness ablation)
	maxPVNorm  float64         // max |placement vector|
	maxFreeNrm float64         // max |free vector| (worst-fit bound)
	maxCeil    restypes.Vector // max preemptable ceiling (preempt feasibility bound)
	maxCeilNrm float64         // max |preemptable ceiling| (preempt fallback bound)
	kinds      uint32          // OR of substrate-kind bits (bit 0 = unknown)
}

func mergeAgg(a, b pidxAgg) pidxAgg {
	return pidxAgg{
		maxPV:      a.maxPV.Max(b.maxPV),
		maxPVDir:   a.maxPVDir.Max(b.maxPVDir),
		maxFreeDir: a.maxFreeDir.Max(b.maxFreeDir),
		maxPVNorm:  max2(a.maxPVNorm, b.maxPVNorm),
		maxFreeNrm: max2(a.maxFreeNrm, b.maxFreeNrm),
		maxCeil:    a.maxCeil.Max(b.maxCeil),
		maxCeilNrm: max2(a.maxCeilNrm, b.maxCeilNrm),
		kinds:      a.kinds | b.kinds,
	}
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// unitVec returns v/|v|, or the zero vector when |v| = 0 (matching
// CosineSimilarity's zero-vector convention).
func unitVec(v restypes.Vector) restypes.Vector {
	n := v.Norm()
	if n == 0 {
		return restypes.Vector{}
	}
	return v.Scale(1 / n)
}

// placementIndex is the segment tree. Leaves live at agg[p..p+n); node j's
// children are 2j and 2j+1. Single-goroutine, like the manager it serves.
type placementIndex struct {
	servers []Node
	n       int       // fleet size
	p       int       // leaf base: smallest power of two ≥ n
	agg     []pidxAgg // 1-based tree array, len 2p
	dirty   []int     // leaf indices pending refresh
	isDirty []bool    // dedupe for dirty
	// kindBits interns normalized substrate-kind names to mask bits. Bit 0
	// is the unknown kind (compatible with everything); interning past 31
	// kinds falls back to bit 0, which can only make pruning more
	// conservative, never wrong.
	kindBits map[string]uint32
	nextBit  uint
}

// newPlacementIndex builds the index over m's fleet, or returns nil when
// the index is disabled, the fleet is empty, or any node cannot push
// capacity invalidations.
func newPlacementIndex(servers []Node) *placementIndex {
	if !placementIndexEnabled || len(servers) == 0 {
		return nil
	}
	watch := make([]capacityWatchable, len(servers))
	for i, s := range servers {
		w := watchableNode(s)
		if w == nil {
			return nil
		}
		watch[i] = w
	}
	n := len(servers)
	p := 1
	for p < n {
		p *= 2
	}
	x := &placementIndex{
		servers:  servers,
		n:        n,
		p:        p,
		agg:      make([]pidxAgg, 2*p),
		dirty:    make([]int, 0, n),
		isDirty:  make([]bool, n),
		kindBits: map[string]uint32{"": 1},
		nextBit:  1,
	}
	for i := 0; i < n; i++ {
		x.markDirty(i)
	}
	for i, w := range watch {
		i := i
		w.WatchCapacity(func() { x.markDirty(i) })
	}
	return x
}

func (x *placementIndex) markDirty(i int) {
	if !x.isDirty[i] {
		x.isDirty[i] = true
		x.dirty = append(x.dirty, i)
	}
}

// kindBit interns a substrate kind name into a mask bit.
func (x *placementIndex) kindBit(kind string) uint32 {
	key := string(substrate.Kind(kind).Normalize())
	if kind == "" {
		key = ""
	}
	if b, ok := x.kindBits[key]; ok {
		return b
	}
	if x.nextBit >= 32 {
		return 1 // out of bits: treat as unknown (never wrongly pruned)
	}
	b := uint32(1) << x.nextBit
	x.nextBit++
	x.kindBits[key] = b
	return b
}

// compatMask returns the set of leaf kind bits a spec of the given
// substrate kind may land on, mirroring substrateCompatible: an empty spec
// kind matches everything, otherwise unknown-kind nodes plus same-kind
// nodes.
func (x *placementIndex) compatMask(kind string) uint32 {
	if kind == "" {
		return ^uint32(0)
	}
	return 1 | x.kindBit(kind)
}

// flush re-reads every dirty leaf through its (possibly wrapped) node and
// recomputes the path to the root. Called at the top of every query, so
// query-time aggregates always reflect the controllers' current memoized
// vectors.
func (x *placementIndex) flush() {
	if len(x.dirty) == 0 {
		return
	}
	for _, i := range x.dirty {
		x.isDirty[i] = false
		s := x.servers[i]
		pv := placementVector(s, LaunchSpec{})
		free := s.Free()
		ceil := s.PreemptableCeiling()
		x.agg[x.p+i] = pidxAgg{
			maxPV:      pv,
			maxPVDir:   unitVec(pv),
			maxFreeDir: unitVec(free),
			maxPVNorm:  pv.Norm(),
			maxFreeNrm: free.Norm(),
			maxCeil:    ceil,
			maxCeilNrm: ceil.Norm(),
			kinds:      x.kindBit(nodeSubstrate(s)),
		}
		for j := (x.p + i) / 2; j >= 1; j /= 2 {
			x.agg[j] = mergeAgg(x.agg[2*j], x.agg[2*j+1])
		}
	}
	x.dirty = x.dirty[:0]
}

// bestFit is the indexed twin of Manager.bestFit: highest fitness among
// alive feasible servers, earliest index on ties.
func (x *placementIndex) bestFit(m *Manager, spec LaunchSpec) int {
	x.flush()
	u := unitVec(spec.Size)
	compat := x.compatMask(spec.Substrate)
	best, bestFitness := -1, -1.0
	var walk func(node, lo, hi int)
	walk = func(node, lo, hi int) {
		if lo >= x.n {
			return
		}
		agg := &x.agg[node]
		if agg.kinds&compat == 0 || !spec.Size.Fits(agg.maxPV) {
			return
		}
		dir := agg.maxPVDir
		if m.freeOnlyFitness {
			dir = agg.maxFreeDir
		}
		if u.Dot(dir)+pidxSlack <= bestFitness {
			return // no leaf below can strictly beat the current best
		}
		if hi-lo == 1 {
			s := m.servers[lo]
			if !m.alive(lo) || !feasible(s, spec) {
				return
			}
			if f := m.fitness(s, spec); f > bestFitness {
				best, bestFitness = lo, f
			}
			return
		}
		mid := (lo + hi) / 2
		walk(2*node, lo, mid)
		walk(2*node+1, mid, hi)
	}
	walk(1, 0, x.p)
	return best
}

// worstFit is the indexed twin of Manager.worstFit: most free-vector
// magnitude among alive feasible servers, earliest index on ties.
func (x *placementIndex) worstFit(m *Manager, spec LaunchSpec) int {
	x.flush()
	compat := x.compatMask(spec.Substrate)
	best, bestRoom := -1, -1.0
	var walk func(node, lo, hi int)
	walk = func(node, lo, hi int) {
		if lo >= x.n {
			return
		}
		agg := &x.agg[node]
		if agg.kinds&compat == 0 || !spec.Size.Fits(agg.maxPV) {
			return
		}
		if agg.maxFreeNrm+pidxSlack <= bestRoom {
			return
		}
		if hi-lo == 1 {
			s := m.servers[lo]
			if !m.alive(lo) || !feasible(s, spec) {
				return
			}
			if r := s.Free().Norm(); r > bestRoom {
				best, bestRoom = lo, r
			}
			return
		}
		mid := (lo + hi) / 2
		walk(2*node, lo, mid)
		walk(2*node+1, mid, hi)
	}
	walk(1, 0, x.p)
	return best
}

// firstFit is the indexed twin of the FirstFit scan: the lowest-indexed
// alive feasible server.
func (x *placementIndex) firstFit(m *Manager, spec LaunchSpec) int {
	x.flush()
	compat := x.compatMask(spec.Substrate)
	var walk func(node, lo, hi int) int
	walk = func(node, lo, hi int) int {
		if lo >= x.n {
			return -1
		}
		agg := &x.agg[node]
		if agg.kinds&compat == 0 || !spec.Size.Fits(agg.maxPV) {
			return -1
		}
		if hi-lo == 1 {
			if m.alive(lo) && feasible(m.servers[lo], spec) {
				return lo
			}
			return -1
		}
		mid := (lo + hi) / 2
		if i := walk(2*node, lo, mid); i >= 0 {
			return i
		}
		return walk(2*node+1, mid, hi)
	}
	return walk(1, 0, x.p)
}

// preemptFallback is the indexed twin of Manager.preemptFallback: among
// alive preempt-feasible servers, the one whose preemptable ceiling has
// the largest magnitude, earliest index on ties.
func (x *placementIndex) preemptFallback(m *Manager, spec LaunchSpec) int {
	if spec.Priority != vm.HighPriority {
		return -1 // preemptFeasible is false everywhere
	}
	x.flush()
	compat := x.compatMask(spec.Substrate)
	best, bestNorm := -1, 0.0
	var walk func(node, lo, hi int)
	walk = func(node, lo, hi int) {
		if lo >= x.n {
			return
		}
		agg := &x.agg[node]
		if agg.kinds&compat == 0 || !spec.Size.Fits(agg.maxCeil) {
			return
		}
		if best >= 0 && agg.maxCeilNrm <= bestNorm {
			return // a fresh leaf norm equals its cached norm bit for bit
		}
		if hi-lo == 1 {
			s := m.servers[lo]
			if !m.alive(lo) || !preemptFeasible(s, spec) {
				return
			}
			if c := s.PreemptableCeiling(); best < 0 || c.Norm() > bestNorm {
				best, bestNorm = lo, c.Norm()
			}
			return
		}
		mid := (lo + hi) / 2
		walk(2*node, lo, mid)
		walk(2*node+1, mid, hi)
	}
	walk(1, 0, x.p)
	return best
}
