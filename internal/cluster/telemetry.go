package cluster

import (
	"time"

	"deflation/internal/restypes"
	"deflation/internal/telemetry"
)

// This file wires the control plane into internal/telemetry. The split
// follows the concurrency model: counters and histograms are atomic and may
// be bumped from anywhere (Manager, LocalController, and the sim are
// single-threaded by design, RemoteNode is not), while GaugeFuncs read
// mutable controller/manager state and are therefore registered only at the
// API layer, where their closures serialize through the same mutex as every
// other access.

// SetTelemetry instruments the controller's cascade: per-level latencies,
// reclaimed amounts, failures, shortfalls, and one trace event per
// deflation/reinflation decision, labeled with this server's name. A nil
// sink detaches.
func (c *LocalController) SetTelemetry(sink *telemetry.Sink) {
	c.casc.SetTelemetry(sink, c.host.Name())
}

// managerTelemetry is the manager's pre-created instrument set.
type managerTelemetry struct {
	heartbeatMisses *telemetry.Counter
	nodeDown        *telemetry.Counter
	nodeUp          *telemetry.Counter
	evictions       *telemetry.Counter
	vmReplaced      *telemetry.Counter
	vmLost          *telemetry.Counter
	vmAdopted       *telemetry.Counter
	vmStaleReleased *telemetry.Counter
	rejections      *telemetry.Counter
	placements      []*telemetry.Counter // by server index
	registry        *telemetry.Registry  // for counters of nodes added later

	// Live-migration instruments (see migrate.go).
	migrations          *telemetry.Counter
	migrationFailures   *telemetry.Counter
	convergenceFailures *telemetry.Counter
	migrationSeconds    *telemetry.Histogram
	migrationDowntime   *telemetry.Histogram
	migratedMB          *telemetry.Histogram
}

// SetTelemetry instruments the manager (heartbeat misses, node up/down
// transitions, evictions and their re-placement outcomes, placement
// decisions per server, rejections) and propagates the sink to every
// managed node that supports instrumentation — in-process LocalControllers
// (including crash-wrapped ones) and RemoteNodes alike. A nil sink
// detaches the manager but not nodes already instrumented.
func (m *Manager) SetTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		m.tel = nil
		return
	}
	r := sink.Registry
	t := &managerTelemetry{
		heartbeatMisses: r.Counter("deflation_manager_heartbeat_misses_total",
			"failed heartbeat probes observed by the failure detector", nil),
		nodeDown: r.Counter("deflation_manager_node_down_total",
			"nodes declared dead after consecutive heartbeat misses", nil),
		nodeUp: r.Counter("deflation_manager_node_up_total",
			"dead nodes that answered a heartbeat and rejoined", nil),
		evictions: r.Counter("deflation_manager_evictions_total",
			"VMs declared lost-in-place on dead nodes (failure-induced preemptions)", nil),
		vmReplaced: r.Counter("deflation_manager_vm_replaced_total",
			"evicted VMs successfully re-launched on healthy nodes", nil),
		vmLost: r.Counter("deflation_manager_vm_lost_total",
			"evicted VMs no healthy node could host", nil),
		vmAdopted: r.Counter("deflation_manager_vm_adopted_total",
			"VMs found running on rejoined nodes and adopted into the placement", nil),
		vmStaleReleased: r.Counter("deflation_manager_vm_stale_released_total",
			"stale VM copies released from rejoined nodes", nil),
		rejections: r.Counter("deflation_manager_rejections_total",
			"launches that found no feasible server", nil),
		migrations: r.Counter("deflation_manager_migrations_total",
			"live migrations completed", nil),
		migrationFailures: r.Counter("deflation_manager_migration_failures_total",
			"live migrations aborted (fault, capacity, or checkpoint failure)", nil),
		convergenceFailures: r.Counter("deflation_manager_migration_convergence_failures_total",
			"pre-copy migrations whose dirty rate outran the link", nil),
		migrationSeconds: r.Histogram("deflation_manager_migration_seconds",
			"end-to-end live-migration duration (seconds)",
			telemetry.DefBuckets(), nil),
		migrationDowntime: r.Histogram("deflation_manager_migration_downtime_seconds",
			"stop-and-copy downtime per migration (seconds)",
			telemetry.DefBuckets(), nil),
		migratedMB: r.Histogram("deflation_manager_migrated_mb",
			"bytes transferred per migration (MB)",
			telemetry.ExpBuckets(64, 2, 12), nil),
	}
	t.registry = r
	t.placements = make([]*telemetry.Counter, len(m.servers))
	for i, s := range m.servers {
		t.placements[i] = r.Counter("deflation_manager_placements_total",
			"placement decisions by chosen server",
			telemetry.Labels{"node": s.Name()})
	}
	m.tel = t
	for _, s := range m.servers {
		if ts, ok := s.(interface{ SetTelemetry(*telemetry.Sink) }); ok {
			ts.SetTelemetry(sink)
		}
	}
}

// addNode grows the per-server placement counters when a node registers
// after instrumentation (dynamic membership).
func (t *managerTelemetry) addNode(name string) {
	t.placements = append(t.placements, t.registry.Counter(
		"deflation_manager_placements_total",
		"placement decisions by chosen server",
		telemetry.Labels{"node": name}))
}

// removeNode splices the counter slice in step with the server slice; the
// registry keeps the labeled series (counters are cumulative).
func (t *managerTelemetry) removeNode(idx int) {
	if idx < len(t.placements) {
		t.placements = append(t.placements[:idx], t.placements[idx+1:]...)
	}
}

// remoteNodeTelemetry instruments the manager-side RPC client.
type remoteNodeTelemetry struct {
	rpcSeconds      map[string]*telemetry.Histogram // by op
	retries         *telemetry.Counter
	transportErrors *telemetry.Counter
}

// SetTelemetry instruments the client: one wall-clock latency histogram per
// control-plane operation (covering all retry attempts and backoff), a
// retry counter, and a transport-error counter, labeled with the remote
// server's name. A nil sink detaches.
func (n *RemoteNode) SetTelemetry(sink *telemetry.Sink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if sink == nil {
		n.tel = nil
		return
	}
	r := sink.Registry
	t := &remoteNodeTelemetry{
		rpcSeconds: make(map[string]*telemetry.Histogram),
		retries: r.Counter("deflation_rpc_retries_total",
			"control-plane RPC retry attempts (not counting first attempts)",
			telemetry.Labels{"node": n.name}),
		transportErrors: r.Counter("deflation_rpc_transport_errors_total",
			"connection-level RPC failures (refused, dropped, timed out)",
			telemetry.Labels{"node": n.name}),
	}
	for _, op := range []string{"state", "launch", "release", "deflate", "ping"} {
		t.rpcSeconds[op] = r.Histogram("deflation_rpc_seconds",
			"control-plane RPC latency including retries and backoff (seconds)",
			telemetry.DefBuckets(), telemetry.Labels{"node": n.name, "op": op})
	}
	n.tel = t
}

// observeRPC records one completed RPC's wall-clock latency.
func (n *RemoteNode) observeRPC(op string, start time.Time) {
	n.mu.Lock()
	t := n.tel
	n.mu.Unlock()
	if t == nil {
		return
	}
	if h, ok := t.rpcSeconds[op]; ok {
		h.Observe(time.Since(start).Seconds())
	}
}

// AttachTelemetry registers scrape-time gauges over the wrapped controller's
// state: capacity, free, allocated, availability, and nominal vectors per
// resource dimension, plus VM count, overcommitment, and preemptions. The
// gauge closures take the API mutex — the LocalController is not itself
// thread-safe, so the gauges must be registered here rather than on the
// controller.
func (a *ControllerAPI) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	r := sink.Registry
	a.mu.Lock()
	node := a.ctrl.Name()
	a.mu.Unlock()
	vec := func(name, help string, read func(*LocalController) restypes.Vector) {
		for _, k := range restypes.Kinds() {
			k := k
			r.GaugeFunc(name, help, telemetry.Labels{"node": node, "resource": k.String()},
				func() float64 {
					a.mu.Lock()
					defer a.mu.Unlock()
					return read(a.ctrl).At(k)
				})
		}
	}
	vec("deflation_node_capacity", "physical server capacity (cores, MB, MB/s)",
		func(c *LocalController) restypes.Vector { return c.host.Capacity() })
	vec("deflation_node_free", "unallocated physical capacity",
		func(c *LocalController) restypes.Vector { return c.Free() })
	vec("deflation_node_allocated", "current physical allocation across VMs",
		func(c *LocalController) restypes.Vector { return c.host.Allocated() })
	vec("deflation_node_nominal", "sum of the VMs' nominal sizes",
		func(c *LocalController) restypes.Vector { return c.NominalSize() })
	vec("deflation_node_availability", "placement availability: free + deflatable",
		func(c *LocalController) restypes.Vector { return c.Availability() })
	scalar := func(name, help string, read func(*LocalController) float64) {
		r.GaugeFunc(name, help, telemetry.Labels{"node": node}, func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return read(a.ctrl)
		})
	}
	scalar("deflation_node_vms", "VMs currently running on this server",
		func(c *LocalController) float64 { return float64(len(c.vms)) })
	scalar("deflation_node_overcommitment", "nominal load over capacity on the binding dimension",
		func(c *LocalController) float64 { return c.Overcommitment() })
	scalar("deflation_node_preemptions", "capacity-driven preemptions this server has performed",
		func(c *LocalController) float64 { return float64(c.preemptions) })
	// Fencing gauges read the epoch guard, which has its own mutex.
	r.GaugeFunc("deflation_node_fenced_epoch", "highest leadership epoch this controller has obeyed",
		telemetry.Labels{"node": node}, func() float64 { return float64(a.guard.Current()) })
	r.GaugeFunc("deflation_node_stale_epoch_rejections", "mutating commands refused for carrying a deposed leader's epoch",
		telemetry.Labels{"node": node}, func() float64 { return float64(a.guard.StaleRejections()) })
}

// AttachTelemetry registers scrape-time gauges over the manager's aggregate
// view (placed VMs, rejections, preemptions, failure-detector state, and
// cluster overcommitment). The closures take the API mutex, mirroring
// ControllerAPI.AttachTelemetry.
func (a *ManagerAPI) AttachTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	r := sink.Registry
	scalar := func(name, help string, read func(*Manager) float64) {
		r.GaugeFunc(name, help, nil, func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return read(a.mgr)
		})
	}
	scalar("deflation_cluster_vms", "VMs currently placed cluster-wide",
		func(m *Manager) float64 { return float64(len(m.placement)) })
	scalar("deflation_cluster_rejections", "launches that found no feasible server",
		func(m *Manager) float64 { return float64(m.rejected) })
	scalar("deflation_cluster_preemptions", "capacity-driven preemptions across all servers",
		func(m *Manager) float64 { return float64(m.Preemptions()) })
	scalar("deflation_cluster_dead_servers", "servers currently marked dead",
		func(m *Manager) float64 { return float64(m.DeadServers()) })
	scalar("deflation_cluster_failure_preemptions", "VMs killed by node failures",
		func(m *Manager) float64 { return float64(m.failurePreemptions) })
	scalar("deflation_cluster_replaced_vms", "failure-evicted VMs re-placed on healthy nodes",
		func(m *Manager) float64 { return float64(m.replacedVMs) })
	scalar("deflation_cluster_lost_vms", "failure-evicted VMs that could not be re-placed",
		func(m *Manager) float64 { return float64(m.lostVMs) })
	scalar("deflation_cluster_adopted_vms", "VMs adopted from node inventories by reconciliation",
		func(m *Manager) float64 { return float64(m.adoptedVMs) })
	scalar("deflation_cluster_stale_releases", "stale VM copies released by reconciliation",
		func(m *Manager) float64 { return float64(m.staleReleases) })
	scalar("deflation_cluster_mean_overcommitment", "mean server overcommitment",
		func(m *Manager) float64 { return m.Snapshot().MeanOvercommitment })
	scalar("deflation_cluster_max_overcommitment", "max server overcommitment",
		func(m *Manager) float64 { return m.Snapshot().MaxOvercommitment })
	scalar("deflation_manager_epoch", "this manager's leadership fencing epoch",
		func(m *Manager) float64 { return float64(m.epoch) })
	scalar("deflation_cluster_nodes", "nodes currently managed (static + registered)",
		func(m *Manager) float64 { return float64(len(m.servers)) })
	a.mu.Lock()
	a.hbTel = r.Counter("deflation_manager_node_heartbeats_total",
		"push heartbeats received from registered agents", nil)
	a.mu.Unlock()
}
