package cluster

import (
	"net/http"
	"time"
)

// HTTPServerTimeouts are the daemon-wide defaults for every control-plane
// http.Server (deflated, deflagent, deflload). Without them a slow-loris
// client — one that opens a connection and trickles (or never sends)
// header bytes — pins a goroutine and a file descriptor indefinitely,
// letting a handful of sockets wedge the control plane.
//
//   - ReadHeaderTimeout bounds the wait for request headers;
//   - ReadTimeout bounds the whole request read (headers + body), sized
//     for the largest control-plane payloads (launch specs, WAL batches);
//   - IdleTimeout reaps keep-alive connections between requests.
//
// Handler deadlines are not covered here: long-running work (migration
// convergence) is bounded by the manager's own OpTimeouts.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 30 * time.Second
	DefaultIdleTimeout       = 120 * time.Second
)

// NewHTTPServer builds an http.Server with the daemon-wide protective
// timeouts applied. Every control-plane listener goes through here so no
// daemon regresses to an unbounded server.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}
