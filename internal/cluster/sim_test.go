package cluster

import (
	"testing"
	"time"

	"deflation/internal/trace"
)

func smallSim(mode Mode, oc float64) SimConfig {
	return SimConfig{
		Servers:          20,
		Mode:             mode,
		TargetOvercommit: oc,
		Seed:             42,
		Trace: trace.Config{
			Count:            800,
			MeanInterarrival: 2 * time.Second,
			LifetimeMedian:   20 * time.Minute,
		},
	}
}

func TestSimDeterministic(t *testing.T) {
	a, err := RunSim(smallSim(ModeDeflation, 1.6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(smallSim(ModeDeflation, 1.6))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("sim not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestSimDeflationBeatsPreemptionOnly(t *testing.T) {
	// Fig. 8c's headline: at every overcommit level, deflation's
	// preemption probability is far below the preemption-only baseline.
	for _, oc := range []float64{1.5, 1.8} {
		defl, err := RunSim(smallSim(ModeDeflation, oc))
		if err != nil {
			t.Fatal(err)
		}
		pre, err := RunSim(smallSim(ModePreemptionOnly, oc))
		if err != nil {
			t.Fatal(err)
		}
		if defl.PreemptionProbability >= pre.PreemptionProbability {
			t.Errorf("oc=%.1f: deflation %.3f not below preemption-only %.3f",
				oc, defl.PreemptionProbability, pre.PreemptionProbability)
		}
		if defl.LowPriorityStarted == 0 || pre.LowPriorityStarted == 0 {
			t.Errorf("oc=%.1f: no low-priority VMs admitted", oc)
		}
	}
}

func TestSimDeflationNegligibleAtModerateOvercommit(t *testing.T) {
	res, err := RunSim(smallSim(ModeDeflation, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.PreemptionProbability > 0.08 {
		t.Errorf("deflation preemption probability at 1.5x = %.3f, want ≈0", res.PreemptionProbability)
	}
}

func TestSimPreemptionRisesWithOvercommit(t *testing.T) {
	low, err := RunSim(smallSim(ModePreemptionOnly, 1.3))
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunSim(smallSim(ModePreemptionOnly, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if high.PreemptionProbability <= low.PreemptionProbability {
		t.Errorf("preemption probability not rising: %.3f at 1.3x vs %.3f at 2.0x",
			low.PreemptionProbability, high.PreemptionProbability)
	}
}

func TestSimDeflationAchievesHigherUtilization(t *testing.T) {
	defl, err := RunSim(smallSim(ModeDeflation, 1.8))
	if err != nil {
		t.Fatal(err)
	}
	pre, err := RunSim(smallSim(ModePreemptionOnly, 1.8))
	if err != nil {
		t.Fatal(err)
	}
	// Deflation sustains nominal load beyond physical capacity; the
	// preemption-only baseline cannot hold admitted VMs past 1.0x.
	if defl.AchievedOvercommit <= 1.0 {
		t.Errorf("deflation achieved overcommit %.2f, want > 1.0", defl.AchievedOvercommit)
	}
	if defl.AchievedOvercommit <= pre.AchievedOvercommit {
		t.Errorf("deflation %.2f not above preemption-only %.2f",
			defl.AchievedOvercommit, pre.AchievedOvercommit)
	}
}

func TestSimPlacementPoliciesComparable(t *testing.T) {
	// Fig. 8d: "all placement policies yield similar levels of server
	// overcommitment" — differences masked by deflation.
	var results []SimResult
	for _, p := range []PlacementPolicy{BestFit, FirstFit, TwoChoices} {
		cfg := smallSim(ModeDeflation, 1.6)
		cfg.Policy = p
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ServerOvercommitMean <= 0 {
			t.Fatalf("%v: zero server overcommitment", p)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		ratio := results[i].ServerOvercommitMean / results[0].ServerOvercommitMean
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("policy %d server overcommit %.2f far from policy 0's %.2f",
				i, results[i].ServerOvercommitMean, results[0].ServerOvercommitMean)
		}
	}
}

func TestSimValidation(t *testing.T) {
	cfg := smallSim(ModeDeflation, 1.5)
	cfg.Trace.Count = -1
	// withDefaults turns 0 into the default, but a negative count must
	// surface the trace generator's error.
	if _, err := RunSim(cfg); err == nil {
		t.Error("negative trace count accepted")
	}
}

func TestSimReportsReclaimLatency(t *testing.T) {
	res, err := RunSim(smallSim(ModeDeflation, 1.8))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanReclaimLatency <= 0 {
		t.Error("no reclaim latency recorded despite overcommitment")
	}
	if res.MaxReclaimLatency < res.MeanReclaimLatency {
		t.Errorf("max %v below mean %v", res.MaxReclaimLatency, res.MeanReclaimLatency)
	}
	// Reclamations of small VM-sized deficits stay well under the worst
	// case of Fig. 8b (a giant VM): minutes, not tens of minutes.
	if res.MaxReclaimLatency > 10*time.Minute {
		t.Errorf("max reclaim latency %v implausibly high", res.MaxReclaimLatency)
	}
}
