package cluster

import (
	"time"

	"deflation/internal/restypes"
)

// crashableNode wraps a LocalController with a crash-stop switch, used by
// fault-injecting simulations (SimConfig.Faults) and tests. While down, every
// control-plane operation fails with ErrNodeDown and all capacity vectors
// read zero, so the manager's placement policies and failure detector see
// exactly what they would see from an unreachable server. Crashing wipes the
// node's VMs — crash-stop failures lose all memory state — so a recovered
// node rejoins empty.
type crashableNode struct {
	*LocalController
	down    bool
	crashes int
}

func newCrashableNode(c *LocalController) *crashableNode {
	return &crashableNode{LocalController: c}
}

// crash takes the node down and returns the names of the VMs that died with
// it.
func (n *crashableNode) crash() []string {
	n.down = true
	n.crashes++
	return n.LocalController.FailAll() // FailAll notifies capacity watchers
}

// recover brings the node back, empty.
func (n *crashableNode) recover() {
	n.down = false
	n.capacityChanged()
}

// isolate partitions the node away without killing its VMs — the manager
// sees a dead node, but the workloads keep running (an agent that outlived
// its network, or a manager that outlived its agent). heal reconnects it,
// VMs intact, so rejoin reconciliation can re-adopt them.
func (n *crashableNode) isolate() {
	n.down = true
	n.capacityChanged()
}

// heal ends an isolate partition.
func (n *crashableNode) heal() {
	n.down = false
	n.capacityChanged()
}

func (n *crashableNode) Ping() error {
	if n.down {
		return ErrNodeDown
	}
	return n.LocalController.Ping()
}

func (n *crashableNode) Launch(spec LaunchSpec) (LaunchReport, error) {
	if n.down {
		return LaunchReport{}, ErrNodeDown
	}
	return n.LocalController.Launch(spec)
}

func (n *crashableNode) Release(name string) error {
	if n.down {
		return ErrNodeDown
	}
	return n.LocalController.Release(name)
}

func (n *crashableNode) Has(name string) (bool, error) {
	if n.down {
		return false, ErrNodeDown
	}
	return n.LocalController.Has(name)
}

func (n *crashableNode) Inventory() ([]VMState, error) {
	if n.down {
		return nil, ErrNodeDown
	}
	return n.LocalController.Inventory()
}

func (n *crashableNode) Free() restypes.Vector {
	if n.down {
		return restypes.Vector{}
	}
	return n.LocalController.Free()
}

func (n *crashableNode) Availability() restypes.Vector {
	if n.down {
		return restypes.Vector{}
	}
	return n.LocalController.Availability()
}

func (n *crashableNode) PreemptableCeiling() restypes.Vector {
	if n.down {
		return restypes.Vector{}
	}
	return n.LocalController.PreemptableCeiling()
}

func (n *crashableNode) Overcommitment() float64 {
	if n.down {
		return 0
	}
	return n.LocalController.Overcommitment()
}

func (n *crashableNode) Checkpoint(name string) (VMCheckpoint, error) {
	if n.down {
		return VMCheckpoint{}, ErrNodeDown
	}
	return n.LocalController.Checkpoint(name)
}

func (n *crashableNode) RestoreVM(cp VMCheckpoint) error {
	if n.down {
		return ErrNodeDown
	}
	return n.LocalController.RestoreVM(cp)
}

func (n *crashableNode) ReserveStream(stream string, rateMBps float64) (float64, error) {
	if n.down {
		return 0, ErrNodeDown
	}
	return n.LocalController.ReserveStream(stream, rateMBps)
}

func (n *crashableNode) ReleaseStream(stream string) error {
	if n.down {
		return ErrNodeDown
	}
	return n.LocalController.ReleaseStream(stream)
}

func (n *crashableNode) DeflateFully(name string) (time.Duration, error) {
	if n.down {
		return 0, ErrNodeDown
	}
	return n.LocalController.DeflateFully(name)
}
