package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"deflation/internal/apps/curveapp"
	"deflation/internal/apps/jvm"
	"deflation/internal/apps/kcompile"
	"deflation/internal/apps/memcache"
	"deflation/internal/apps/webapp"
	"deflation/internal/perfmodel"
	"deflation/internal/restypes"
	"deflation/internal/substrate"
	"deflation/internal/vm"
)

// Node is a server as seen by the cluster manager: the local deflation
// controller, either in-process (*LocalController) or behind the REST API
// (*RemoteNode). The manager only needs capacity vectors and lifecycle
// operations; all reclamation mechanics stay on the server side.
type Node interface {
	// Name identifies the server.
	Name() string
	// Launch starts a VM, reclaiming resources as needed.
	Launch(spec LaunchSpec) (LaunchReport, error)
	// Release ends a VM's life and reinflates survivors.
	Release(name string) error
	// Has reports whether the named VM currently runs here. The error is
	// non-nil when the node could not be reached — distinctly different
	// from a definitive (false, nil) "not found", so an unreachable server
	// is never mistaken for a missing VM.
	Has(name string) (bool, error)
	// Ping probes liveness cheaply; the manager's health monitor counts
	// consecutive failures to detect crash-stop node failures.
	Ping() error
	// Free, Availability, and PreemptableCeiling are the placement vectors.
	Free() restypes.Vector
	Availability() restypes.Vector
	PreemptableCeiling() restypes.Vector
	// Mode returns the server's reclamation mode.
	Mode() Mode
	// Overcommitment returns nominal load vs capacity (binding dimension).
	Overcommitment() float64
	// Preemptions returns the server's lifetime preemption count.
	Preemptions() int

	// The live-migration surface (see migrate.go): Checkpoint captures a
	// VM's transferable state on the source, RestoreVM materializes it on
	// the destination, ReserveStream/ReleaseStream hold migration link
	// bandwidth (throttling co-located low-priority VMs when the NIC is
	// saturated), and DeflateFully squeezes a VM to its minimum footprint
	// before a deflate-then-migrate move.
	Checkpoint(name string) (VMCheckpoint, error)
	RestoreVM(cp VMCheckpoint) error
	ReserveStream(stream string, rateMBps float64) (float64, error)
	ReleaseStream(stream string) error
	DeflateFully(name string) (time.Duration, error)
}

// substrateKinder is implemented by nodes that can report their substrate
// kind ("hypervisor" or "container"): LocalController directly (and
// crashableNode by embedding), RemoteNode via the agent's /v1/state
// self-report, fencedNode by unwrapping.
type substrateKinder interface {
	SubstrateKind() string
}

// nodeSubstrate reports a node's substrate kind, or "" when unknown
// (remote agents predating the registration self-report).
func nodeSubstrate(n Node) string {
	for {
		if k, ok := n.(substrateKinder); ok {
			return k.SubstrateKind()
		}
		f, ok := n.(*fencedNode)
		if !ok {
			return ""
		}
		n = f.Node
	}
}

// substrateCompatible reports whether a VM of the given substrate kind can
// run on node n. Unknown on either side means "assume compatible": the
// node's own Spawn/RestoreInstance is the authoritative check, and launch
// and migration paths handle its refusal cleanly.
func substrateCompatible(n Node, kind string) bool {
	if kind == "" {
		return true
	}
	ns := nodeSubstrate(n)
	if ns == "" {
		return true
	}
	return substrate.Kind(ns).Normalize() == substrate.Kind(kind).Normalize()
}

// AppFactory builds an application for a VM of the given nominal size.
type AppFactory func(size restypes.Vector) vm.Application

var (
	appKindsMu sync.RWMutex
	appKinds   = map[string]AppFactory{}
)

// RegisterAppKind installs a named application factory, used when a launch
// spec arrives over the REST API (functions do not serialize). Registering
// an existing name replaces it.
func RegisterAppKind(name string, f AppFactory) {
	if name == "" || f == nil {
		panic("cluster: RegisterAppKind needs a name and a factory")
	}
	appKindsMu.Lock()
	defer appKindsMu.Unlock()
	appKinds[name] = f
}

// AppKind resolves a registered factory.
func AppKind(name string) (AppFactory, error) {
	appKindsMu.RLock()
	defer appKindsMu.RUnlock()
	f, ok := appKinds[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown app kind %q (have %v)", name, AppKinds())
	}
	return f, nil
}

// AppKinds lists registered kind names, sorted.
func AppKinds() []string {
	appKindsMu.RLock()
	defer appKindsMu.RUnlock()
	out := make([]string, 0, len(appKinds))
	for k := range appKinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	// Built-in application kinds covering the paper's workload table.
	RegisterAppKind("inelastic", func(size restypes.Vector) vm.Application {
		return curveapp.New(curveapp.Config{Size: size, Curve: perfmodel.CurveSpecJBB})
	})
	RegisterAppKind("elastic", func(size restypes.Vector) vm.Application {
		return curveapp.New(curveapp.Config{Size: size, Curve: perfmodel.CurveSpecJBB, Elastic: true})
	})
	RegisterAppKind("spark-kmeans", func(size restypes.Vector) vm.Application {
		return curveapp.New(curveapp.Config{Size: size, Curve: perfmodel.CurveSparkKmeans, Elastic: true})
	})
	RegisterAppKind("kcompile", func(size restypes.Vector) vm.Application {
		return kcompile.NewApp(kcompile.AppConfig{Cores: size.CPU})
	})
	RegisterAppKind("memcached", func(size restypes.Vector) vm.Application {
		return mustMemcache(size, false)
	})
	RegisterAppKind("memcached-aware", func(size restypes.Vector) vm.Application {
		return mustMemcache(size, true)
	})
	RegisterAppKind("specjbb", func(size restypes.Vector) vm.Application {
		return mustJVM(size, false)
	})
	RegisterAppKind("specjbb-aware", func(size restypes.Vector) vm.Application {
		return mustJVM(size, true)
	})
	RegisterAppKind("webserver", func(size restypes.Vector) vm.Application {
		return mustWeb(size, false)
	})
	RegisterAppKind("webserver-aware", func(size restypes.Vector) vm.Application {
		return mustWeb(size, true)
	})
}

func mustWeb(size restypes.Vector, aware bool) vm.Application {
	app, err := webapp.NewApp(webapp.Config{Cores: size.CPU, DeflationAware: aware})
	if err != nil {
		return curveapp.New(curveapp.Config{Size: size, Curve: perfmodel.CurveSpecJBB, Elastic: aware})
	}
	return app
}

func mustMemcache(size restypes.Vector, aware bool) vm.Application {
	cacheMB := size.MemoryMB * 0.5
	app, err := memcache.NewApp(memcache.AppConfig{
		CacheMB: cacheMB, DatasetMB: cacheMB * 1.2,
		Cores: size.CPU, DeflationAware: aware,
		Scale: 2048, // keep real backing stores small for many-VM clusters
	})
	if err != nil {
		// Tiny VMs cannot host a meaningful store; fall back to a curve.
		return curveapp.New(curveapp.Config{Size: size, Curve: perfmodel.CurveMemcached, Elastic: aware})
	}
	return app
}

func mustJVM(size restypes.Vector, aware bool) vm.Application {
	app, err := jvm.NewApp(jvm.AppConfig{
		MaxHeapMB: size.MemoryMB * 0.6, LiveMB: size.MemoryMB * 0.2,
		Cores: size.CPU, DeflationAware: aware,
	})
	if err != nil {
		return curveapp.New(curveapp.Config{Size: size, Curve: perfmodel.CurveSpecJBB, Elastic: aware})
	}
	return app
}

// ResolveApp returns the factory for a spec: the local NewApp function if
// set, otherwise the registered AppKind.
func (s LaunchSpec) ResolveApp() (AppFactory, error) {
	if s.NewApp != nil {
		return s.NewApp, nil
	}
	if s.AppKind == "" {
		return nil, fmt.Errorf("cluster: launch %q needs NewApp or AppKind", s.Name)
	}
	return AppKind(s.AppKind)
}
