package cluster

import (
	"fmt"
	"time"

	"deflation/internal/apps/curveapp"
	"deflation/internal/cascade"
	"deflation/internal/hypervisor"
	"deflation/internal/perfmodel"
	"deflation/internal/pricing"
	"deflation/internal/restypes"
	"deflation/internal/simclock"
	"deflation/internal/trace"
	"deflation/internal/vm"
)

// SimConfig parameterizes the trace-driven 100-node cluster simulation of
// §6.3 (Figs. 8c and 8d).
type SimConfig struct {
	Servers        int             // default 100
	ServerCapacity restypes.Vector // default 16 cores / 64 GB / 400 / 400
	Policy         PlacementPolicy
	Mode           Mode
	// TargetOvercommit is the admitted-nominal-to-capacity ratio the
	// admission loop sustains (1.6 = "60% overcommitment").
	TargetOvercommit float64
	// MinSizeFraction sets low-priority VMs' minimum size m_i as a
	// fraction of nominal ("empirically determined minimum levels for
	// Spark, memcached, and SpecJBB", default 0.10).
	MinSizeFraction float64
	// Trace drives arrivals; Count defaults to 2000.
	Trace trace.Config
	Seed  int64
	// Meter, when non-nil, accrues provider revenue over the simulation
	// (§8's pricing discussion; see internal/pricing).
	Meter *pricing.Meter
	// ProactiveHorizon enables predictive deflation (§7's future work):
	// before each arrival, low-priority VMs are pre-deflated so free
	// capacity covers the demand forecast over this horizon. Zero disables.
	ProactiveHorizon time.Duration
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Servers == 0 {
		c.Servers = 100
	}
	if c.ServerCapacity.IsZero() {
		// 32 cores, 128 GB, and I/O generous enough that CPU and memory
		// are the binding dimensions; the largest trace VM (8 cores) is a
		// quarter of a server, keeping fragmentation realistic.
		c.ServerCapacity = restypes.V(32, 131072, 4000, 4000)
	}
	if c.TargetOvercommit == 0 {
		c.TargetOvercommit = 1.0
	}
	if c.MinSizeFraction == 0 {
		c.MinSizeFraction = 0.10
	}
	if c.Trace.Count == 0 {
		c.Trace.Count = 2000
	}
	if c.Trace.Seed == 0 {
		c.Trace.Seed = c.Seed + 1
	}
	return c
}

// SimResult reports a cluster simulation.
type SimResult struct {
	LowPriorityStarted int
	Preemptions        int
	// PreemptionProbability = Preemptions / LowPriorityStarted (Fig. 8c's
	// y-axis).
	PreemptionProbability float64
	Rejections            int
	AchievedOvercommit    float64 // time-averaged admitted nominal / capacity
	// ServerOvercommit quantiles across servers, sampled over time
	// (Fig. 8d's y-axis).
	ServerOvercommitMean float64
	ServerOvercommitP95  float64
	// MeanReclaimLatency and MaxReclaimLatency summarize the resource-
	// allocation latency deflation adds to placements that needed
	// reclamation (§6.3, "Latency").
	MeanReclaimLatency time.Duration
	MaxReclaimLatency  time.Duration
	// LatentPlacements counts placements that paid nonzero reclamation
	// latency; proactive deflation reduces it.
	LatentPlacements int
	// ProactiveReclaims counts predictive pre-deflation rounds.
	ProactiveReclaims int
	// MeanLowThroughput is the time-sampled mean normalized throughput of
	// the running low-priority VMs — the performance side of the
	// minimum-size (m_i) tradeoff: smaller minimums mean fewer preemptions
	// but deeper deflation.
	MeanLowThroughput float64
}

// curves cycled across low-priority VMs: the mixed application population
// of the paper's simulation (Spark, memcached, SpecJBB).
func simCurves() []*perfmodel.UtilityCurve {
	return []*perfmodel.UtilityCurve{
		perfmodel.CurveSparkKmeans,
		perfmodel.CurveMemcached,
		perfmodel.CurveSpecJBB,
	}
}

// RunSim executes the trace-driven simulation.
func RunSim(cfg SimConfig) (SimResult, error) {
	cfg = cfg.withDefaults()
	var res SimResult

	servers := make([]*LocalController, cfg.Servers)
	for i := range servers {
		h, err := hypervisor.NewHost(hypervisor.Config{
			Name:     fmt.Sprintf("server-%03d", i),
			Capacity: cfg.ServerCapacity,
		})
		if err != nil {
			return res, err
		}
		servers[i] = NewLocalController(h, cascade.AllLevels(), cfg.Mode)
	}
	nodes := make([]Node, len(servers))
	for i, s := range servers {
		nodes[i] = s
	}
	mgr, err := NewManager(nodes, cfg.Policy, cfg.Seed)
	if err != nil {
		return res, err
	}

	events, err := trace.Generate(cfg.Trace)
	if err != nil {
		return res, err
	}

	totalCapacity := cfg.ServerCapacity.Scale(float64(cfg.Servers))
	curves := simCurves()

	// Per-class admission targets maintain the paper's population mix
	// ("50.0% VMs are low-priority"): each class may hold half the target
	// overcommitment in nominal resources.
	classTarget := cfg.TargetOvercommit / 2

	running := make(map[string]trace.Event) // admitted and still placed
	nominalHigh, nominalLow := restypes.Vector{}, restypes.Vector{}
	var ocSamples, srvMeanSamples, srvP95Samples, lowTpSamples []float64
	var reclaimLatencies []time.Duration
	warmup := len(events) / 4 // skip ramp-up when sampling
	admitted := 0
	var simErr error

	// reconcile drops preempted VMs from the nominal-load accounting.
	reconcile := func(names []string) {
		for _, name := range names {
			e, ok := running[name]
			if !ok {
				continue
			}
			delete(running, name)
			nominalLow = nominalLow.Sub(e.Size) // only lows are preemptible
		}
	}

	// The simulation runs on the shared discrete-event clock: one event per
	// arrival, departures scheduled dynamically at admission time.
	clock := simclock.New()

	// meterSample accrues revenue for the interval that just ended, using
	// the allocations in effect up to now.
	meterSample := func() {
		if cfg.Meter == nil {
			return
		}
		var usages []pricing.Usage
		for _, s := range servers {
			for _, v := range s.VMs() {
				usages = append(usages, pricing.Usage{
					Nominal:      v.Size(),
					Allocated:    v.Allocation(),
					HighPriority: v.Priority() == vm.HighPriority,
				})
			}
		}
		cfg.Meter.Sample(clock.Now(), usages)
	}

	depart := func(name string) {
		meterSample()
		e, ok := running[name]
		if !ok || !mgr.Placed(name) {
			return // preempted earlier
		}
		delete(running, name)
		if e.HighPriority {
			nominalHigh = nominalHigh.Sub(e.Size)
		} else {
			nominalLow = nominalLow.Sub(e.Size)
		}
		if err := mgr.Release(name); err != nil && simErr == nil {
			simErr = err
		}
	}

	var forecaster *Forecaster
	if cfg.ProactiveHorizon > 0 {
		var err error
		forecaster, err = NewForecaster(0.2)
		if err != nil {
			return res, err
		}
	}

	arrive := func(e trace.Event) {
		meterSample()
		// Predictive deflation: make room for the forecast demand before
		// it arrives, so high-priority placements find free capacity.
		if forecaster != nil {
			if proactiveReclaim(servers, forecaster.Forecast(cfg.ProactiveHorizon)) > 0 {
				res.ProactiveReclaims++
			}
			if e.HighPriority {
				forecaster.Observe(clock.Now(), e.Size)
			}
		}
		// Admission control: hold each class at its share of the target.
		classNominal := nominalLow
		if e.HighPriority {
			classNominal = nominalHigh
		}
		if overcommitOf(classNominal, totalCapacity) >= classTarget {
			return // drop: class already at target pressure
		}
		prio := vm.LowPriority
		minSize := e.Size.Scale(cfg.MinSizeFraction)
		if e.HighPriority {
			prio = vm.HighPriority
			minSize = restypes.Vector{}
		}
		curve := curves[admitted%len(curves)]
		spec := LaunchSpec{
			Name:     e.ID,
			Size:     e.Size,
			MinSize:  minSize,
			Priority: prio,
			Warm:     true,
			NewApp: func(size restypes.Vector) vm.Application {
				return curveapp.New(curveapp.Config{
					Curve: curve, Size: size, Elastic: !e.HighPriority,
				})
			},
		}
		_, rep, err := mgr.Launch(spec)
		reconcile(rep.Preempted)
		if err != nil {
			res.Rejections++
			return
		}
		if rep.ReclaimLatency > 0 {
			res.LatentPlacements++
			reclaimLatencies = append(reclaimLatencies, rep.ReclaimLatency)
			if rep.ReclaimLatency > res.MaxReclaimLatency {
				res.MaxReclaimLatency = rep.ReclaimLatency
			}
		}
		if !e.HighPriority {
			res.LowPriorityStarted++
		}
		running[e.ID] = e
		if e.HighPriority {
			nominalHigh = nominalHigh.Add(e.Size)
		} else {
			nominalLow = nominalLow.Add(e.Size)
		}
		name := e.ID
		clock.After(e.Lifetime, func(time.Duration) { depart(name) })

		// Sample cluster state after warmup.
		admitted++
		if admitted >= warmup {
			ocSamples = append(ocSamples, overcommitOf(nominalHigh.Add(nominalLow), totalCapacity))
			snap := mgr.Snapshot()
			srvMeanSamples = append(srvMeanSamples, snap.MeanOvercommitment)
			srvP95Samples = append(srvP95Samples, quantile(snap.ServerOvercommitment, 0.95))
			var tpSum float64
			tpN := 0
			for _, s := range servers {
				for _, v := range s.VMs() {
					if v.Priority() == vm.LowPriority {
						tpSum += v.Throughput()
						tpN++
					}
				}
			}
			if tpN > 0 {
				lowTpSamples = append(lowTpSamples, tpSum/float64(tpN))
			}
		}
	}

	for _, e := range events {
		e := e
		clock.At(e.Arrival, func(time.Duration) { arrive(e) })
	}
	clock.Run()
	if simErr != nil {
		return res, simErr
	}

	// Preempted VMs may still have departure events pending; Placed()
	// already reconciled them. Final accounting:
	res.Preemptions = mgr.Preemptions()
	if res.LowPriorityStarted > 0 {
		res.PreemptionProbability = float64(res.Preemptions) / float64(res.LowPriorityStarted)
	}
	res.AchievedOvercommit = mean(ocSamples)
	res.ServerOvercommitMean = mean(srvMeanSamples)
	res.ServerOvercommitP95 = mean(srvP95Samples)
	res.MeanLowThroughput = mean(lowTpSamples)
	if len(reclaimLatencies) > 0 {
		var sum time.Duration
		for _, l := range reclaimLatencies {
			sum += l
		}
		res.MeanReclaimLatency = sum / time.Duration(len(reclaimLatencies))
	}
	return res, nil
}

// overcommitOf measures nominal load against capacity on the binding
// dimension (the paper's VM mix is CPU-heavy relative to servers, so CPU
// binds; using the max keeps the metric meaningful for any mix).
func overcommitOf(nominal, capacity restypes.Vector) float64 {
	if capacity.CPU == 0 || capacity.MemoryMB == 0 {
		return 0
	}
	cpu := nominal.CPU / capacity.CPU
	mem := nominal.MemoryMB / capacity.MemoryMB
	if cpu > mem {
		return cpu
	}
	return mem
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
