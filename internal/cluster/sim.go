package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"deflation/internal/apps/curveapp"
	"deflation/internal/cascade"
	"deflation/internal/faults"
	"deflation/internal/hypervisor"
	"deflation/internal/journal"
	"deflation/internal/migration"
	"deflation/internal/perfmodel"
	"deflation/internal/pricing"
	"deflation/internal/restypes"
	"deflation/internal/simcg"
	"deflation/internal/simclock"
	"deflation/internal/stats"
	"deflation/internal/substrate"
	"deflation/internal/telemetry"
	"deflation/internal/trace"
	"deflation/internal/vm"
)

// SimConfig parameterizes the trace-driven 100-node cluster simulation of
// §6.3 (Figs. 8c and 8d).
type SimConfig struct {
	Servers        int             // default 100
	ServerCapacity restypes.Vector // default 16 cores / 64 GB / 400 / 400
	Policy         PlacementPolicy
	Mode           Mode
	// TargetOvercommit is the admitted-nominal-to-capacity ratio the
	// admission loop sustains (1.6 = "60% overcommitment").
	TargetOvercommit float64
	// MinSizeFraction sets low-priority VMs' minimum size m_i as a
	// fraction of nominal ("empirically determined minimum levels for
	// Spark, memcached, and SpecJBB", default 0.10).
	MinSizeFraction float64
	// Trace drives arrivals; Count defaults to 2000.
	Trace trace.Config
	Seed  int64
	// Meter, when non-nil, accrues provider revenue over the simulation
	// (§8's pricing discussion; see internal/pricing).
	Meter *pricing.Meter
	// ProactiveHorizon enables predictive deflation (§7's future work):
	// before each arrival, low-priority VMs are pre-deflated so free
	// capacity covers the demand forecast over this horizon. Zero disables.
	ProactiveHorizon time.Duration
	// Faults configures deterministic fault injection: crash-stop node
	// failures detected by the manager's heartbeats, and agent/OS-level
	// cascade faults. The zero value disables injection entirely and the
	// simulation takes exactly the fault-free code path, so a chaos sweep's
	// zero-fault cell reproduces the baseline figures bit for bit.
	Faults faults.Config
	// HeartbeatInterval is the failure detector's probe period (default 30s;
	// only used when Faults is enabled).
	HeartbeatInterval time.Duration
	// HeartbeatMisses overrides the misses-before-dead threshold (default 3).
	HeartbeatMisses int
	// HAStandby enables manager high availability under fault injection: the
	// leader runs under a fencing epoch (every node wraps an epoch guard), a
	// warm standby shadows its WAL, and leader death — crash, partition, or a
	// poisoned journal — triggers a lease-expiry takeover via PromoteStandby
	// instead of an in-place restart. Requires Faults to be enabled; ignored
	// otherwise, so the zero-fault path stays bit-for-bit identical.
	HAStandby bool
	// LeaseTimeout is the leadership lease: how long the cluster stays
	// headless between leader death and the standby's takeover (default
	// 2×HeartbeatInterval; only used with HAStandby).
	LeaseTimeout time.Duration
	// Reclaim selects the manager's reclamation fallback (see ReclaimPolicy).
	// The zero value (ReclaimPreempt) takes exactly the pre-migration code
	// path, so migration-disabled runs reproduce baseline figures bit for
	// bit.
	Reclaim ReclaimPolicy
	// Migration parameterizes the live-migration performance model; the zero
	// model uses defaults (dedicated 10 GbE link, 300 ms downtime target).
	// Only consulted when Reclaim enables migration.
	Migration migration.Model
	// Telemetry, when non-nil, instruments the simulated cluster: cascade
	// decisions are traced and counted per server, and the manager's
	// failure-detector and placement counters accrue into the sink's
	// registry. Nil (the default) leaves the simulation on the exact
	// uninstrumented hot path.
	Telemetry *telemetry.Sink
	// SampleEvery thins the post-warmup cluster sampling: state (overcommit,
	// per-server quantiles, throughput) is sampled on every SampleEvery-th
	// admission instead of every one. Each sample walks every server and
	// every VM — O(servers·VMs) — which dominates XL fleets (the 8c-xl
	// sweep). The default 1 samples every admission, the exact legacy
	// behavior bit for bit.
	SampleEvery int
	// ContainerFraction is the fraction of servers backed by the cgroup
	// container substrate (internal/simcg) instead of the KVM hypervisor;
	// the substrate is recorded in each launch's journaled placement so
	// Recover restores container-backed VMs on a compatible node. Container
	// nodes are interleaved evenly across the fleet. Zero (the default)
	// keeps every server on the hypervisor substrate — the exact
	// pre-multi-substrate code path, bit-for-bit.
	ContainerFraction float64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Servers == 0 {
		c.Servers = 100
	}
	if c.ServerCapacity.IsZero() {
		// 32 cores, 128 GB, and I/O generous enough that CPU and memory
		// are the binding dimensions; the largest trace VM (8 cores) is a
		// quarter of a server, keeping fragmentation realistic.
		c.ServerCapacity = restypes.V(32, 131072, 4000, 4000)
	}
	if c.TargetOvercommit == 0 {
		c.TargetOvercommit = 1.0
	}
	if c.MinSizeFraction == 0 {
		c.MinSizeFraction = 0.10
	}
	if c.Trace.Count == 0 {
		c.Trace.Count = 2000
	}
	if c.Trace.Seed == 0 {
		c.Trace.Seed = c.Seed + 1
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 30 * time.Second
	}
	if c.Faults.Seed == 0 {
		c.Faults.Seed = c.Seed + 2
	}
	if c.LeaseTimeout == 0 {
		c.LeaseTimeout = 2 * c.HeartbeatInterval
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 1
	}
	return c
}

// SimResult reports a cluster simulation.
type SimResult struct {
	LowPriorityStarted int
	Preemptions        int
	// PreemptionProbability = (Preemptions + failure-induced evictions of
	// low-priority VMs) / LowPriorityStarted (Fig. 8c's y-axis; the failure
	// term is zero without SimConfig.Faults).
	PreemptionProbability float64
	Rejections            int
	AchievedOvercommit    float64 // time-averaged admitted nominal / capacity
	// ServerOvercommit quantiles across servers, sampled over time
	// (Fig. 8d's y-axis).
	ServerOvercommitMean float64
	ServerOvercommitP95  float64
	// MeanReclaimLatency and MaxReclaimLatency summarize the resource-
	// allocation latency deflation adds to placements that needed
	// reclamation (§6.3, "Latency").
	MeanReclaimLatency time.Duration
	MaxReclaimLatency  time.Duration
	// LatentPlacements counts placements that paid nonzero reclamation
	// latency; proactive deflation reduces it.
	LatentPlacements int
	// ProactiveReclaims counts predictive pre-deflation rounds.
	ProactiveReclaims int
	// MeanLowThroughput is the time-sampled mean normalized throughput of
	// the running low-priority VMs — the performance side of the
	// minimum-size (m_i) tradeoff: smaller minimums mean fewer preemptions
	// but deeper deflation.
	MeanLowThroughput float64
	// Goodput is the time-sampled aggregate normalized throughput summed
	// over all running VMs — the cluster's useful work rate. Crashes and
	// lost VMs lower it directly; deflation and injected agent faults lower
	// it through per-VM throughput.
	Goodput float64
	// NodeCrashes, FailurePreemptions, VMsReplaced, and VMsLost summarize
	// injected crash-stop failures (all zero without SimConfig.Faults).
	// FailurePreemptions = VMsReplaced + VMsLost.
	NodeCrashes        int
	FailurePreemptions int
	VMsReplaced        int
	VMsLost            int
	// ManagerCrashes counts injected manager crash-restart cycles; each one
	// rebuilds the manager from its journal via Recover (zero unless
	// Faults.ManagerCrashMTBF is set).
	ManagerCrashes int
	// Manager-HA activity (all zero unless SimConfig.HAStandby): standby
	// takeovers, injected leader partitions, total leaderless time across
	// crash/partition/poison windows, journals fail-stopped by injected disk
	// errors, deposed-leader commands provably refused by the nodes' epoch
	// guards after a partition healed, and healthy VMs a takeover evicted —
	// the HA design target for FailoverEvictions is zero.
	Failovers             int
	Partitions            int
	HeadlessTime          time.Duration
	JournalPoisonings     int
	StaleCommandsRejected int
	FailoverEvictions     int
	// Migration activity (all zero unless SimConfig.Reclaim enables
	// migration-based reclamation): completed migrations, failed/aborted
	// ones, pre-copy convergence failures, bytes moved, and the summed copy
	// duration and stop-and-copy downtime.
	Migrations          int
	MigrationFailures   int
	ConvergenceFailures int
	MigratedMB          float64
	MigrationTime       time.Duration
	MigrationDowntime   time.Duration
}

// curves cycled across low-priority VMs: the mixed application population
// of the paper's simulation (Spark, memcached, SpecJBB).
func simCurves() []*perfmodel.UtilityCurve {
	return []*perfmodel.UtilityCurve{
		perfmodel.CurveSparkKmeans,
		perfmodel.CurveMemcached,
		perfmodel.CurveSpecJBB,
	}
}

// RunSim executes the trace-driven simulation.
func RunSim(cfg SimConfig) (SimResult, error) {
	cfg = cfg.withDefaults()
	var res SimResult

	servers := make([]*LocalController, cfg.Servers)
	for i := range servers {
		var sub substrate.Substrate
		name := fmt.Sprintf("server-%03d", i)
		// Bresenham interleave: server i is container-backed iff the
		// cumulative container count must advance here, spreading the two
		// substrates evenly instead of splitting the fleet into halves.
		f := cfg.ContainerFraction
		if f > 0 && int(f*float64(i+1)) > int(f*float64(i)) {
			h, err := simcg.NewHost(simcg.Config{
				Name:     name,
				Capacity: cfg.ServerCapacity,
			})
			if err != nil {
				return res, err
			}
			sub = h
		} else {
			h, err := hypervisor.NewHost(hypervisor.Config{
				Name:     name,
				Capacity: cfg.ServerCapacity,
			})
			if err != nil {
				return res, err
			}
			sub = h
		}
		servers[i] = NewLocalController(sub, cascade.AllLevels(), cfg.Mode)
	}
	// Without fault injection the controllers are used directly — the exact
	// fault-free code path — so zeroed Faults reproduce baseline figures.
	injectFaults := cfg.Faults.Enabled()
	var inj *faults.Injector
	var crashables []*crashableNode
	nodes := make([]Node, len(servers))
	for i, s := range servers {
		nodes[i] = s
	}
	if injectFaults {
		inj = faults.New(cfg.Faults)
		crashables = make([]*crashableNode, len(servers))
		for i, s := range servers {
			crashables[i] = newCrashableNode(s)
			nodes[i] = crashables[i]
			// Cascade-level faults: hung or failed deflation agents and
			// partially-failed hot-unplugs, degrading to the next level.
			s.Cascade().SetFaultHook(func(level string) cascade.LevelFault {
				switch level {
				case "app":
					o := inj.AgentFault()
					return cascade.LevelFault{Fail: o.Fail, Hang: o.Hang}
				case "os":
					if o := inj.OSFault(); o.Fail {
						return cascade.LevelFault{Fail: true, Fraction: o.Fraction}
					}
				}
				return cascade.LevelFault{}
			})
		}
	}
	// Manager HA: each leadership term wraps the nodes in its own fencedNode
	// set. The guards — one per physical node, shared across terms — are the
	// nodes' memory of the highest epoch they have obeyed, so a deposed
	// leader's commands are provably refused after a partition heals.
	haActive := injectFaults && cfg.HAStandby
	makeNodes := func() []Node { return nodes }
	if haActive {
		base := make([]Node, len(nodes))
		copy(base, nodes)
		guards := make([]*EpochGuard, len(base))
		for i := range guards {
			guards[i] = &EpochGuard{}
		}
		makeNodes = func() []Node {
			term := make([]Node, len(base))
			for i := range base {
				term[i] = newFencedNode(base[i], guards[i])
			}
			return term
		}
		nodes = makeNodes()
	}
	mgr, err := NewManager(nodes, cfg.Policy, cfg.Seed)
	if err != nil {
		return res, err
	}
	if injectFaults {
		mgr.SetHealthPolicy(HealthPolicy{MaxMisses: cfg.HeartbeatMisses})
	}
	if cfg.Telemetry != nil {
		mgr.SetTelemetry(cfg.Telemetry)
	}
	// Manager crash-restart faults and HA takeovers need a journal; it lives
	// in a temp dir for the simulation's lifetime. Batched fsyncs and a
	// coarse snapshot cadence keep the sim fast — in-process "crashes" lose
	// nothing the kernel accepted, which is exactly the durability model.
	const simSyncEvery, simSnapshotEvery = 64, 512
	var jdir string
	var diskFailOp func(string) error
	if haActive && cfg.Faults.DiskFailProb > 0 {
		diskFailOp = inj.DiskFault
	}
	if injectFaults && (cfg.Faults.ManagerCrashMTBF > 0 || haActive) {
		var err error
		jdir, err = os.MkdirTemp("", "deflsim-wal-")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(jdir)
		j, err := journal.Open(jdir, journal.Options{SyncEvery: simSyncEvery, FailOp: diskFailOp})
		if err != nil {
			return res, err
		}
		defer func() { mgr.Journal().Close() }()
		mgr.AttachJournal(j, simSnapshotEvery)
		if haActive {
			// Term 1: every node RPC from now on carries the fencing epoch.
			mgr.BecomeLeader()
		}
	}

	events, err := trace.Generate(cfg.Trace)
	if err != nil {
		return res, err
	}

	totalCapacity := cfg.ServerCapacity.Scale(float64(cfg.Servers))
	curves := simCurves()

	// Per-class admission targets maintain the paper's population mix
	// ("50.0% VMs are low-priority"): each class may hold half the target
	// overcommitment in nominal resources.
	classTarget := cfg.TargetOvercommit / 2

	running := make(map[string]trace.Event) // admitted and still placed
	nominalHigh, nominalLow := restypes.Vector{}, restypes.Vector{}
	warmup := len(events) / 4 // skip ramp-up when sampling
	// Pre-size the sample buffers for the post-warmup admissions so the
	// hot loop appends without growing.
	nSamples := (len(events)-warmup)/cfg.SampleEvery + 1
	ocSamples := make([]float64, 0, nSamples)
	srvMeanSamples := make([]float64, 0, nSamples)
	srvP95Samples := make([]float64, 0, nSamples)
	lowTpSamples := make([]float64, 0, nSamples)
	gpSamples := make([]float64, 0, nSamples)
	var reclaimLatencies []time.Duration
	admitted := 0
	failureEvictions := 0 // low-priority VMs killed by node crashes
	// HA state: headless marks the window between leader death (or partition
	// onset) and takeover/heal; departures landing in it are deferred to the
	// next term, arrivals bounce like refused connections. Always false
	// without HAStandby. highestEpoch keeps terms strictly monotone even
	// when takeovers overlap.
	headless := false
	var deferredDeparts []string
	var highestEpoch uint64
	if haActive {
		highestEpoch = mgr.Epoch()
	}
	var simErr error

	// reconcile drops preempted VMs from the nominal-load accounting.
	reconcile := func(names []string) {
		for _, name := range names {
			e, ok := running[name]
			if !ok {
				continue
			}
			delete(running, name)
			nominalLow = nominalLow.Sub(e.Size) // only lows are preemptible
		}
	}

	// The simulation runs on the shared discrete-event clock: one event per
	// arrival, departures scheduled dynamically at admission time.
	clock := simclock.New()

	// wireMigration configures migration-based reclamation on a manager
	// (including one rebuilt by crash recovery). With the zero policy the
	// manager is left untouched — the exact pre-migration code path.
	wireMigration := func(m *Manager) {
		if cfg.Reclaim == ReclaimPreempt {
			return
		}
		m.SetReclaimPolicy(cfg.Reclaim)
		m.SetMigrationModel(cfg.Migration)
		m.SetMigrationScheduler(func(d time.Duration, f func()) {
			clock.After(d, func(time.Duration) { f() })
		})
		if injectFaults {
			m.SetMigrationFaults(inj)
		}
	}
	wireMigration(mgr)

	// meterSample accrues revenue for the interval that just ended, using
	// the allocations in effect up to now.
	meterSample := func() {
		if cfg.Meter == nil {
			return
		}
		var usages []pricing.Usage
		for _, s := range servers {
			for _, v := range s.VMs() {
				usages = append(usages, pricing.Usage{
					Nominal:      v.Size(),
					Allocated:    v.Allocation(),
					HighPriority: v.Priority() == vm.HighPriority,
				})
			}
		}
		cfg.Meter.Sample(clock.Now(), usages)
	}

	depart := func(name string) {
		if headless {
			// No reachable leader; the departure lands once the new term
			// takes over (or the partition heals).
			deferredDeparts = append(deferredDeparts, name)
			return
		}
		meterSample()
		e, ok := running[name]
		if !ok || !mgr.Placed(name) {
			return // preempted earlier
		}
		delete(running, name)
		if e.HighPriority {
			nominalHigh = nominalHigh.Sub(e.Size)
		} else {
			nominalLow = nominalLow.Sub(e.Size)
		}
		// A VM departing from a crashed-but-undetected node cannot be
		// released over the control plane; the crash already destroyed it.
		if err := mgr.Release(name); err != nil && !errors.Is(err, ErrNodeDown) && simErr == nil {
			simErr = err
		}
	}

	var forecaster *Forecaster
	if cfg.ProactiveHorizon > 0 {
		var err error
		forecaster, err = NewForecaster(0.2)
		if err != nil {
			return res, err
		}
	}

	arrive := func(e trace.Event) {
		meterSample()
		if headless {
			// No reachable leader: the launch bounces exactly as a refused
			// connection would.
			res.Rejections++
			return
		}
		// Predictive deflation: make room for the forecast demand before
		// it arrives, so high-priority placements find free capacity.
		if forecaster != nil {
			if proactiveReclaim(servers, forecaster.Forecast(cfg.ProactiveHorizon)) > 0 {
				res.ProactiveReclaims++
			}
			if e.HighPriority {
				forecaster.Observe(clock.Now(), e.Size)
			}
		}
		// Admission control: hold each class at its share of the target.
		classNominal := nominalLow
		if e.HighPriority {
			classNominal = nominalHigh
		}
		if overcommitOf(classNominal, totalCapacity) >= classTarget {
			return // drop: class already at target pressure
		}
		prio := vm.LowPriority
		minSize := e.Size.Scale(cfg.MinSizeFraction)
		if e.HighPriority {
			prio = vm.HighPriority
			minSize = restypes.Vector{}
		}
		curve := curves[admitted%len(curves)]
		// AppKind is the serializable fallback for the closure: NewApp takes
		// precedence while this manager lives, but a journal replay cannot
		// carry a function, so post-recovery re-placements relaunch the VM
		// from the registered generic kind instead.
		appKind := "elastic"
		if e.HighPriority {
			appKind = "inelastic"
		}
		spec := LaunchSpec{
			Name:     e.ID,
			Size:     e.Size,
			MinSize:  minSize,
			Priority: prio,
			Warm:     true,
			AppKind:  appKind,
			NewApp: func(size restypes.Vector) vm.Application {
				return curveapp.New(curveapp.Config{
					Curve: curve, Size: size, Elastic: !e.HighPriority,
				})
			},
		}
		_, rep, err := mgr.Launch(spec)
		reconcile(rep.Preempted)
		if err != nil {
			res.Rejections++
			return
		}
		if rep.ReclaimLatency > 0 {
			res.LatentPlacements++
			reclaimLatencies = append(reclaimLatencies, rep.ReclaimLatency)
			if rep.ReclaimLatency > res.MaxReclaimLatency {
				res.MaxReclaimLatency = rep.ReclaimLatency
			}
		}
		if !e.HighPriority {
			res.LowPriorityStarted++
		}
		running[e.ID] = e
		if e.HighPriority {
			nominalHigh = nominalHigh.Add(e.Size)
		} else {
			nominalLow = nominalLow.Add(e.Size)
		}
		name := e.ID
		clock.After(e.Lifetime, func(time.Duration) { depart(name) })

		// Sample cluster state after warmup, thinned by SampleEvery (1 =
		// every admission, the exact legacy cadence).
		admitted++
		if admitted >= warmup && (admitted-warmup)%cfg.SampleEvery == 0 {
			ocSamples = append(ocSamples, overcommitOf(nominalHigh.Add(nominalLow), totalCapacity))
			snap := mgr.Snapshot()
			srvMeanSamples = append(srvMeanSamples, snap.MeanOvercommitment)
			srvP95Samples = append(srvP95Samples, quantile(snap.ServerOvercommitment, 0.95))
			var tpSum, gp float64
			tpN := 0
			for _, s := range servers {
				for _, v := range s.VMs() {
					gp += v.Throughput()
					if v.Priority() == vm.LowPriority {
						tpSum += v.Throughput()
						tpN++
					}
				}
			}
			if tpN > 0 {
				lowTpSamples = append(lowTpSamples, tpSum/float64(tpN))
			}
			gpSamples = append(gpSamples, gp)
		}
	}

	if injectFaults {
		// The arrival window bounds both heartbeats and crash scheduling so
		// the event queue drains (an unbounded chain would never terminate).
		var horizon time.Duration
		for _, e := range events {
			if e.Arrival > horizon {
				horizon = e.Arrival
			}
		}
		// HA takeover machinery (inert unless haActive).
		//
		// replicaOf reads the standby's warm replica out of the leader's
		// journal — the same snapshot-plus-tail batch a Follower applies over
		// HTTP, at zero lag. A poisoned journal still serves reads: the
		// append that hit the injected disk error never durably wrote, so it
		// is absent here too, which is exactly the replication-lag semantics
		// (the fail-stopped leader's last in-memory mutations are recovered
		// from node ground truth, not from the WAL).
		replicaOf := func(j *journal.Journal) (*WALState, error) {
			st := NewWALState()
			if j == nil {
				return st, nil
			}
			b, err := j.RecordsAfter(0)
			if err != nil {
				return nil, err
			}
			if b.Snapshot != nil {
				if err := json.Unmarshal(b.Snapshot, st); err != nil {
					return nil, err
				}
				if st.AppliedSeq < b.SnapshotSeq {
					st.AppliedSeq = b.SnapshotSeq
				}
			}
			for _, rec := range b.Records {
				if err := st.Apply(rec); err != nil {
					return nil, err
				}
			}
			return st, nil
		}
		// resume ends a headless window and lands the departures it queued.
		resume := func() {
			headless = false
			pending := deferredDeparts
			deferredDeparts = nil
			for _, name := range pending {
				depart(name)
			}
		}
		// promote is the takeover: build the next term's manager from the
		// standby's frozen replica via PromoteStandby (replay is already
		// done; reconciliation and in-flight-migration resolution run against
		// live node inventories under the bumped epoch) and swap it in for
		// every closure.
		var termSeq int
		promote := func(st *WALState) {
			termSeq++
			sdir := filepath.Join(jdir, fmt.Sprintf("standby-term-%03d", termSeq))
			m2, _, err := PromoteStandby(DurabilityConfig{
				Dir: sdir, SnapshotEvery: simSnapshotEvery, SyncEvery: simSyncEvery, FailOp: diskFailOp,
			}, st, makeNodes(), cfg.Policy, cfg.Seed)
			if err != nil {
				if simErr == nil {
					simErr = fmt.Errorf("cluster: sim standby promotion: %w", err)
				}
				return
			}
			if m2.Epoch() <= highestEpoch {
				// A takeover during a takeover (a crash inside a partition
				// window) can promote from the replica of an already-
				// superseded term; leadership epochs stay strictly monotone.
				m2.SetEpoch(highestEpoch + 1)
			}
			highestEpoch = m2.Epoch()
			m2.SetHealthPolicy(HealthPolicy{MaxMisses: cfg.HeartbeatMisses})
			if cfg.Telemetry != nil {
				m2.SetTelemetry(cfg.Telemetry)
			}
			wireMigration(m2)
			// Healthy-workload accounting across the takeover. A running VM
			// the new term no longer places usually died with its node while
			// the cluster was headless — charged like any heartbeat eviction.
			// Two live-VM cases are distinct: a VM alive on a node the
			// replica still marks dead is merely unreplicated (the old
			// leader saw the node rejoin after its journal stopped); the
			// heartbeat adopts it when the node rejoins this term too, so it
			// stays in the books. A VM alive on a node this term trusts is a
			// genuine takeover eviction — the failure mode fencing and
			// adoption exist to prevent, counted separately (target: zero).
			names := make([]string, 0, len(running))
			for name := range running {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if m2.Placed(name) {
					continue
				}
				aliveOn := -1
				for i, s := range servers {
					if ok, err := s.Has(name); err == nil && ok {
						aliveOn = i
						break
					}
				}
				if aliveOn >= 0 {
					if m2.health[aliveOn].dead {
						continue // re-adopted on rejoin, via ProbeHealth
					}
					res.FailoverEvictions++
				}
				e := running[name]
				delete(running, name)
				if e.HighPriority {
					nominalHigh = nominalHigh.Sub(e.Size)
				} else {
					nominalLow = nominalLow.Sub(e.Size)
					failureEvictions++
				}
			}
			mgr = m2
			res.Failovers++
			resume()
		}
		// leaderDown fail-stops the current leader: freeze the standby's
		// replica now (nothing the dead leader did after this instant reached
		// it), close the journal, and schedule the lease-expiry takeover.
		leaderDown := func() {
			if headless {
				return // a takeover is already in progress
			}
			st, err := replicaOf(mgr.Journal())
			if err != nil {
				if simErr == nil {
					simErr = fmt.Errorf("cluster: sim replica read: %w", err)
				}
				return
			}
			mgr.Journal().Close()
			old := mgr
			headless = true
			res.HeadlessTime += cfg.LeaseTimeout
			clock.After(cfg.LeaseTimeout, func(time.Duration) {
				if mgr != old {
					return
				}
				promote(st)
			})
		}
		// staleProbe has a deposed leader act on its stale view — release its
		// first placement — which a correctly fenced node must refuse. A
		// mutation that goes through is a split-brain bug, failed loudly.
		staleProbe := func(old *Manager) {
			defer func() {
				if j := old.Journal(); j != nil {
					j.Close()
				}
			}()
			var names []string
			for name := range old.Placements() {
				names = append(names, name)
			}
			if len(names) == 0 {
				return
			}
			sort.Strings(names)
			if err := old.Release(names[0]); errors.Is(err, ErrStaleEpoch) {
				res.StaleCommandsRejected++
			} else if simErr == nil {
				simErr = fmt.Errorf("cluster: sim deposed leader's command was not fenced (vm %s, err %v)", names[0], err)
			}
		}
		// Heartbeat rounds drive the failure detector; its events feed the
		// sim's nominal-load and preemption accounting. The round also
		// doubles as the leader's own liveness check: a journal poisoned by
		// an injected disk error fail-stops the leader here, bounding
		// poison-detection latency at one heartbeat interval.
		clock.Every(cfg.HeartbeatInterval, func(now time.Duration) bool {
			if headless {
				return now < horizon // no leader to probe
			}
			if haActive && mgr.WALError() != nil {
				res.JournalPoisonings++
				leaderDown()
				return now < horizon
			}
			for _, ev := range mgr.ProbeHealth() {
				switch ev.Kind {
				case VMEvicted:
					if e, ok := running[ev.VM]; ok && !e.HighPriority {
						failureEvictions++
					}
				case VMReplaced:
					// The VM restarted elsewhere and keeps running; any
					// capacity preemptions its re-placement caused are
					// reconciled like any others.
					reconcile(ev.Preempted)
				case VMLost:
					if e, ok := running[ev.VM]; ok {
						delete(running, ev.VM)
						if e.HighPriority {
							nominalHigh = nominalHigh.Sub(e.Size)
						} else {
							nominalLow = nominalLow.Sub(e.Size)
						}
					}
				}
			}
			return now < horizon
		})
		// Crash-stop node failures: exponentially-distributed inter-crash
		// gaps per node; a crashed node recovers empty after RecoveryTime and
		// its next crash is drawn then, from its own stream.
		var scheduleCrash func(i int)
		scheduleCrash = func(i int) {
			gap, ok := inj.NextCrash(servers[i].Name())
			if !ok {
				return
			}
			at := clock.Now() + gap
			if at > horizon {
				return
			}
			clock.At(at, func(time.Duration) {
				crashables[i].crash()
				res.NodeCrashes++
				clock.After(inj.RecoveryTime(servers[i].Name()), func(time.Duration) {
					crashables[i].recover()
					scheduleCrash(i)
				})
			})
		}
		for i := range crashables {
			scheduleCrash(i)
		}
		// Manager crash failures. Without HA the manager process dies and
		// immediately restarts via Recover — replay the journal, then
		// reconcile against node inventories. With HAStandby the dead leader
		// stays dead and the standby takes over at lease expiry instead. In
		// both modes the nodes (and their VMs) keep running throughout,
		// exactly like deflagent processes outliving a SIGKILL'd deflated.
		if cfg.Faults.ManagerCrashMTBF > 0 {
			var scheduleMgrCrash func()
			scheduleMgrCrash = func() {
				gap, ok := inj.NextManagerCrash()
				if !ok {
					return
				}
				at := clock.Now() + gap
				if at > horizon {
					return
				}
				clock.At(at, func(time.Duration) {
					if haActive {
						// A crash while already headless hits a process
						// that is not leading anything; nothing to do.
						if !headless {
							res.ManagerCrashes++
							leaderDown()
						}
						scheduleMgrCrash()
						return
					}
					mgr.Journal().Close()
					m2, _, err := Recover(DurabilityConfig{
						Dir: jdir, SnapshotEvery: simSnapshotEvery, SyncEvery: simSyncEvery,
					}, nodes, cfg.Policy, cfg.Seed)
					if err != nil {
						if simErr == nil {
							simErr = fmt.Errorf("cluster: sim manager recovery: %w", err)
						}
						return
					}
					m2.SetHealthPolicy(HealthPolicy{MaxMisses: cfg.HeartbeatMisses})
					if cfg.Telemetry != nil {
						m2.SetTelemetry(cfg.Telemetry)
					}
					wireMigration(m2)
					mgr = m2 // arrive/depart/heartbeat closures see the new manager
					res.ManagerCrashes++
					scheduleMgrCrash()
				})
			}
			scheduleMgrCrash()
		}
		// Network partitions: the leader keeps running but can reach neither
		// agents nor its standby — the classic dual-leader window. The
		// standby's lease expires mid-partition and it takes over under a
		// bumped epoch; when the network heals, the deposed leader retries
		// its queued work and the nodes' epoch guards must refuse it (the
		// rejection is counted; a mutation that lands fails the sim). A
		// partition shorter than the lease just stalls the control plane.
		if haActive && cfg.Faults.PartitionMTBF > 0 {
			var schedulePartition func()
			schedulePartition = func() {
				gap, ok := inj.NextPartition()
				if !ok {
					return
				}
				at := clock.Now() + gap
				if at > horizon {
					return
				}
				clock.At(at, func(time.Duration) {
					if headless {
						schedulePartition() // already failing over; skip
						return
					}
					dur := inj.PartitionDuration()
					old := mgr
					// Freeze the standby's replica at partition onset:
					// nothing the isolated leader journals after this
					// instant replicates.
					st, err := replicaOf(old.Journal())
					if err != nil {
						if simErr == nil {
							simErr = fmt.Errorf("cluster: sim replica read: %w", err)
						}
						return
					}
					res.Partitions++
					headless = true
					if dur > cfg.LeaseTimeout {
						res.HeadlessTime += cfg.LeaseTimeout
						clock.After(cfg.LeaseTimeout, func(time.Duration) {
							if mgr == old {
								promote(st)
							}
						})
					} else {
						// Too short to expire the lease: the leader comes
						// back with its term intact.
						res.HeadlessTime += dur
					}
					clock.After(dur, func(time.Duration) {
						if mgr == old {
							resume()
						} else {
							// Healed into a newer term: the deposed leader
							// must find itself fenced.
							staleProbe(old)
						}
						schedulePartition()
					})
				})
			}
			schedulePartition()
		}
	}

	for _, e := range events {
		e := e
		clock.At(e.Arrival, func(time.Duration) { arrive(e) })
	}
	clock.Run()
	if simErr != nil {
		return res, simErr
	}

	// Preempted VMs may still have departure events pending; Placed()
	// already reconciled them. Final accounting:
	res.Preemptions = mgr.Preemptions()
	if res.LowPriorityStarted > 0 {
		res.PreemptionProbability = float64(res.Preemptions+failureEvictions) / float64(res.LowPriorityStarted)
	}
	res.Goodput = mean(gpSamples)
	res.FailurePreemptions = mgr.FailurePreemptions()
	ms := mgr.MigrationStats()
	res.Migrations = ms.Migrations
	res.MigrationFailures = ms.Failures
	res.ConvergenceFailures = ms.ConvergenceFailures
	res.MigratedMB = ms.MigratedMB
	res.MigrationTime = ms.TotalDuration
	res.MigrationDowntime = ms.TotalDowntime
	finalStats := mgr.Snapshot()
	res.VMsReplaced = finalStats.ReplacedVMs
	res.VMsLost = finalStats.LostVMs
	res.AchievedOvercommit = mean(ocSamples)
	res.ServerOvercommitMean = mean(srvMeanSamples)
	res.ServerOvercommitP95 = mean(srvP95Samples)
	res.MeanLowThroughput = mean(lowTpSamples)
	if len(reclaimLatencies) > 0 {
		var sum time.Duration
		for _, l := range reclaimLatencies {
			sum += l
		}
		res.MeanReclaimLatency = sum / time.Duration(len(reclaimLatencies))
	}
	return res, nil
}

// overcommitOf measures nominal load against capacity on the binding
// dimension (the paper's VM mix is CPU-heavy relative to servers, so CPU
// binds; using the max keeps the metric meaningful for any mix).
func overcommitOf(nominal, capacity restypes.Vector) float64 {
	if capacity.CPU == 0 || capacity.MemoryMB == 0 {
		return 0
	}
	cpu := nominal.CPU / capacity.CPU
	mem := nominal.MemoryMB / capacity.MemoryMB
	if cpu > mem {
		return cpu
	}
	return mem
}

// mean and quantile delegate to the shared stats package (the quantile
// clamping fixed by the PR-5 fuzzing lives there now); the wrappers keep
// this package's fuzz target stable.
func mean(xs []float64) float64 { return stats.Mean(xs) }

func quantile(sorted []float64, q float64) float64 { return stats.Quantile(sorted, q) }
