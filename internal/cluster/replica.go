package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"deflation/internal/journal"
	"deflation/internal/telemetry"
)

// Manager high availability: a standby deflated tails the leader's WAL over
// HTTP and keeps a warm WALState replica. The leader side is one route on
// ManagerAPI (GET /v1/replica/wal?after=SEQ) serving journal.Batch — log
// records after the follower's applied sequence, or the compacted snapshot
// plus tail when the follower is behind the last compaction. The follower
// polls, applies, and measures its lag; when the leader misses enough
// consecutive polls the lease is considered expired and the standby
// promotes itself via PromoteStandby — a Recover-style adoption (replay is
// already done; reconciliation and in-flight-migration resolution run
// against the live nodes) under a bumped fencing epoch, evicting no healthy
// workload.

// replicaWALPath is the leader's WAL streaming route.
const replicaWALPath = "/v1/replica/wal"

// FollowerConfig parameterizes a standby's WAL tailer.
type FollowerConfig struct {
	// Leader is the leader manager's base URL (e.g. http://127.0.0.1:7070).
	Leader string
	// PollInterval is the tailing cadence (default 500ms). The replication
	// lag a failover can lose is bounded by one poll interval plus the
	// leader's unsynced tail.
	PollInterval time.Duration
	// DeadAfter is how many consecutive failed polls expire the leader's
	// lease (default 6 — with the default poll interval, a 3s lease).
	DeadAfter int
	// Client is the HTTP client (default: 2s-timeout client).
	Client *http.Client
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 6
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Second}
	}
	return c
}

// ReplicationStatus is the wire form of a standby's view of replication.
type ReplicationStatus struct {
	Leader     string `json:"leader"`
	AppliedSeq uint64 `json:"applied_seq"`
	LeaderSeq  uint64 `json:"leader_seq"`
	// Lag is LeaderSeq − AppliedSeq as of the last successful poll.
	Lag   uint64 `json:"lag"`
	Epoch uint64 `json:"epoch"`
	// Polls and Applied count successful polls and records applied.
	Polls   uint64 `json:"polls"`
	Applied uint64 `json:"records_applied"`
	// ConsecutiveMisses counts failed polls since the last success; the
	// lease expires at DeadAfter.
	ConsecutiveMisses int    `json:"consecutive_misses,omitempty"`
	LeaderDead        bool   `json:"leader_dead,omitempty"`
	LastError         string `json:"last_error,omitempty"`
}

// Follower tails a leader's WAL into a warm WALState replica. Safe for
// concurrent use (the poll loop and the standby's HTTP handlers share it).
type Follower struct {
	cfg FollowerConfig

	mu        sync.Mutex
	st        *WALState
	leaderSeq uint64
	epoch     uint64
	misses    int
	polls     uint64
	applied   uint64
	lastErr   error
}

// NewFollower builds a follower tailing the configured leader.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" {
		return nil, fmt.Errorf("cluster: follower needs a leader URL")
	}
	return &Follower{cfg: cfg.withDefaults(), st: NewWALState()}, nil
}

// PollOnce fetches and applies one WAL batch. A transport or decode failure
// counts one miss toward lease expiry; success resets the count.
func (f *Follower) PollOnce() error {
	f.mu.Lock()
	after := f.st.AppliedSeq
	f.mu.Unlock()

	batch, err := f.fetch(after)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		f.misses++
		f.lastErr = err
		return err
	}
	if batch.Snapshot != nil {
		// The follower's position was compacted away (first poll, or it
		// fell behind a snapshot): reset from the leader's snapshot exactly
		// as Recover does, then apply the tail on top.
		ns := NewWALState()
		if err := json.Unmarshal(batch.Snapshot, ns); err != nil {
			f.misses++
			f.lastErr = fmt.Errorf("cluster: decoding replica snapshot: %w", err)
			return f.lastErr
		}
		if ns.AppliedSeq < batch.SnapshotSeq {
			ns.AppliedSeq = batch.SnapshotSeq
		}
		f.st = ns
	}
	for _, rec := range batch.Records {
		if err := f.st.Apply(rec); err != nil {
			f.misses++
			f.lastErr = err
			return err
		}
		f.applied++
	}
	f.leaderSeq = batch.Seq
	f.epoch = batch.Epoch
	f.misses = 0
	f.polls++
	f.lastErr = nil
	return nil
}

func (f *Follower) fetch(after uint64) (journal.Batch, error) {
	var b journal.Batch
	url := fmt.Sprintf("%s%s?after=%d", f.cfg.Leader, replicaWALPath, after)
	resp, err := f.cfg.Client.Get(url)
	if err != nil {
		return b, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return b, fmt.Errorf("cluster: replica poll: %s", resp.Status)
	}
	return b, json.NewDecoder(resp.Body).Decode(&b)
}

// LeaderDead reports whether consecutive poll failures have expired the
// leader's lease.
func (f *Follower) LeaderDead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.misses >= f.cfg.DeadAfter
}

// Status returns the standby's replication view.
func (f *Follower) Status() ReplicationStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := ReplicationStatus{
		Leader:            f.cfg.Leader,
		AppliedSeq:        f.st.AppliedSeq,
		LeaderSeq:         f.leaderSeq,
		Epoch:             f.epoch,
		Polls:             f.polls,
		Applied:           f.applied,
		ConsecutiveMisses: f.misses,
		LeaderDead:        f.misses >= f.cfg.DeadAfter,
	}
	if f.leaderSeq > f.st.AppliedSeq {
		st.Lag = f.leaderSeq - f.st.AppliedSeq
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	return st
}

// ReplicaState returns the warm replica (the follower's own copy — callers
// promote with it, after which the follower must not be polled again).
func (f *Follower) ReplicaState() *WALState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Placements returns a copy of the replica's placement map, safe to read
// while the poll loop keeps applying.
func (f *Follower) Placements() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string, len(f.st.Placements))
	for name, node := range f.st.Placements {
		out[name] = node
	}
	return out
}

// Run polls until ctx is done or the leader's lease expires; it returns
// true when the lease expired (the caller should promote) and false on
// context cancellation.
func (f *Follower) Run(ctx context.Context) bool {
	t := time.NewTicker(f.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			f.PollOnce()
			if f.LeaderDead() {
				return true
			}
		}
	}
}

// SetTelemetry registers the standby's replication gauges: applied/leader
// sequence, lag, poll counters, and lease state.
func (f *Follower) SetTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	r := sink.Registry
	stat := func(name, help string, read func(ReplicationStatus) float64) {
		r.GaugeFunc(name, help, nil, func() float64 { return read(f.Status()) })
	}
	stat("deflation_replica_applied_seq", "last WAL sequence applied to the warm replica",
		func(s ReplicationStatus) float64 { return float64(s.AppliedSeq) })
	stat("deflation_replica_leader_seq", "leader WAL sequence at the last successful poll",
		func(s ReplicationStatus) float64 { return float64(s.LeaderSeq) })
	stat("deflation_replica_lag_records", "replication lag in WAL records",
		func(s ReplicationStatus) float64 { return float64(s.Lag) })
	stat("deflation_replica_polls", "successful replica polls",
		func(s ReplicationStatus) float64 { return float64(s.Polls) })
	stat("deflation_replica_consecutive_misses", "failed polls since the last success",
		func(s ReplicationStatus) float64 { return float64(s.ConsecutiveMisses) })
}

// StandbyAPI is the HTTP surface a standby serves while tailing: a
// liveness probe and a /v1/state reporting role, replication status, and
// the warm replica's placements. After promotion the daemon swaps this
// handler for the full ManagerAPI.
type StandbyAPI struct {
	f *Follower
}

// NewStandbyAPI wraps a follower.
func NewStandbyAPI(f *Follower) (*StandbyAPI, error) {
	if f == nil {
		return nil, fmt.Errorf("cluster: nil follower")
	}
	return &StandbyAPI{f: f}, nil
}

// Handler returns the standby's routes (GET /v1/healthz, GET /v1/state).
func (a *StandbyAPI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": RoleStandby})
	})
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, _ *http.Request) {
		status := a.f.Status()
		resp := ManagerStateResponse{
			Role:        RoleStandby,
			Epoch:       status.Epoch,
			Placements:  a.f.Placements(),
			Replication: &status,
		}
		resp.VMs = len(resp.Placements)
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// PromoteStandby turns a warm replica into the acting manager: the standby
// opens its own journal (a fresh term's WAL), installs the replicated
// state, bumps the fencing epoch past every term it has seen — fencing the
// old leader off every controller the moment the new epoch lands — then
// runs the same adoption pass Recover does: anti-entropy reconciliation
// against live node inventories and resolution of in-flight migrations.
// Healthy workloads are never evicted: reconciliation only re-places VMs
// that are journaled but verifiably gone, adopts ones the WAL missed, and
// releases provably stale copies.
func PromoteStandby(cfg DurabilityConfig, st *WALState, servers []Node, policy PlacementPolicy, seed int64) (*Manager, *RecoveryReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	j, err := journal.Open(cfg.Dir, journal.Options{SyncEvery: cfg.SyncEvery, FailOp: cfg.FailOp})
	if err != nil {
		return nil, nil, err
	}
	m, err := NewManager(servers, policy, seed)
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	if st == nil {
		st = NewWALState()
	}
	rep := &RecoveryReport{
		LastSeq:         st.AppliedSeq,
		RecordsReplayed: 0, // replay happened continuously, while tailing
	}
	m.installWALState(st)
	m.journal = j
	// New term: every node RPC from here on — including reconciliation's
	// releases and re-placements — carries the bumped epoch, and the fencing
	// sweep raises every reachable node's guard before anything else, so the
	// deposed leader is refused even by nodes this term never commands.
	m.SetEpoch(max(st.Epoch, j.Epoch()) + 1)
	m.fenceAll()
	m.reconcileAll(rep)

	rec := &durableRecorder{m: m, j: j, every: cfg.SnapshotEvery, onErr: cfg.OnWALError}
	m.rec = rec
	m.record(Event{Kind: evLeader})
	rec.snapshot()

	rep.Placements = len(m.placement)
	rep.Duration = time.Since(start)
	return m, rep, nil
}
