package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"deflation/internal/journal"
	"deflation/internal/telemetry"
)

// Manager high availability: a standby deflated tails the leader's WAL over
// HTTP and keeps a warm WALState replica. The leader side is one route on
// ManagerAPI (GET /v1/replica/wal?after=SEQ) serving journal.Batch — log
// records after the follower's applied sequence, or the compacted snapshot
// plus tail when the follower is behind the last compaction. The follower
// polls, applies, and measures its lag; when the leader misses enough
// consecutive polls the lease is considered expired and the standby
// promotes itself via PromoteStandby — a Recover-style adoption (replay is
// already done; reconciliation and in-flight-migration resolution run
// against the live nodes) under a bumped fencing epoch, evicting no healthy
// workload.

// replicaWALPath is the leader's WAL streaming route.
const replicaWALPath = "/v1/replica/wal"

// FollowerConfig parameterizes a standby's WAL tailer.
type FollowerConfig struct {
	// Leader is the leader manager's base URL (e.g. http://127.0.0.1:7070).
	Leader string
	// PollInterval is the tailing cadence (default 500ms). The replication
	// lag a failover can lose is bounded by one poll interval plus the
	// leader's unsynced tail.
	PollInterval time.Duration
	// DeadAfter is how many consecutive failed polls expire the leader's
	// lease (default 6 — with the default poll interval, a 3s lease).
	DeadAfter int
	// Controllers are the fleet's controller URLs — the corroboration path.
	// A standby that cannot reach the leader does not promote on that
	// evidence alone: an asymmetric partition (standby↔leader broken, both
	// sides still reaching controllers) would otherwise fence off a
	// perfectly healthy leader. Before promoting, the standby probes each
	// controller's healthz; if any reports the leader's epoch asserted
	// within CorroborationWindow — or no controller is reachable at all
	// (the standby itself is the isolated one) — promotion holds and
	// tailing continues. Empty disables corroboration (lease expiry alone
	// promotes, the pre-corroboration behavior).
	Controllers []string
	// CorroborationWindow is how recent a controller-observed epoch
	// assertion must be to prove the leader alive (default 30s — three
	// default manager heartbeat intervals; the leader asserts its epoch on
	// every fenced probe and command).
	CorroborationWindow time.Duration
	// Client is the HTTP client (default: 2s-timeout client).
	Client *http.Client
}

func (c FollowerConfig) withDefaults() FollowerConfig {
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 6
	}
	if c.CorroborationWindow <= 0 {
		c.CorroborationWindow = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Second}
	}
	return c
}

// ReplicationStatus is the wire form of a standby's view of replication.
type ReplicationStatus struct {
	Leader     string `json:"leader"`
	AppliedSeq uint64 `json:"applied_seq"`
	LeaderSeq  uint64 `json:"leader_seq"`
	// Lag is LeaderSeq − AppliedSeq as of the last successful poll.
	Lag   uint64 `json:"lag"`
	Epoch uint64 `json:"epoch"`
	// Polls and Applied count successful polls and records applied.
	Polls   uint64 `json:"polls"`
	Applied uint64 `json:"records_applied"`
	// ConsecutiveMisses counts failed polls since the last success; the
	// lease expires at DeadAfter.
	ConsecutiveMisses int  `json:"consecutive_misses,omitempty"`
	LeaderDead        bool `json:"leader_dead,omitempty"`
	// PromotionsHeld counts lease expiries where the controllers
	// corroborated the leader as still alive, so the standby kept tailing
	// instead of triggering a false failover.
	PromotionsHeld uint64 `json:"promotions_held,omitempty"`
	LastError      string `json:"last_error,omitempty"`
}

// Follower tails a leader's WAL into a warm WALState replica. Safe for
// concurrent use (the poll loop and the standby's HTTP handlers share it).
type Follower struct {
	cfg FollowerConfig

	mu        sync.Mutex
	st        *WALState
	leaderSeq uint64
	epoch     uint64
	misses    int
	polls     uint64
	applied   uint64
	held      uint64
	lastErr   error
}

// NewFollower builds a follower tailing the configured leader.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Leader == "" {
		return nil, fmt.Errorf("cluster: follower needs a leader URL")
	}
	return &Follower{cfg: cfg.withDefaults(), st: NewWALState()}, nil
}

// PollOnce fetches and applies one WAL batch. A transport or decode failure
// counts one miss toward lease expiry; success resets the count.
func (f *Follower) PollOnce() error {
	f.mu.Lock()
	after := f.st.AppliedSeq
	f.mu.Unlock()

	batch, err := f.fetch(after)
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		f.misses++
		f.lastErr = err
		return err
	}
	// A leader's journal only ever moves forward: an epoch or sequence
	// below what this follower has already observed means whoever answered
	// is not the leader we were replicating — typically a leader recreated
	// on a fresh state directory, whose restarted sequence numbers would
	// otherwise be silently swallowed by Apply's replay guard while the
	// replica diverged at "lag 0". Refuse the stream and surface it.
	if batch.Epoch < f.epoch || batch.Seq < f.leaderSeq {
		f.misses++
		f.lastErr = fmt.Errorf(
			"cluster: leader regressed (epoch %d→%d, seq %d→%d): refusing WAL stream from a recreated or stale leader",
			f.epoch, batch.Epoch, f.leaderSeq, batch.Seq)
		return f.lastErr
	}
	if batch.Snapshot != nil {
		// The follower's position was compacted away (first poll, or it
		// fell behind a snapshot): reset from the leader's snapshot exactly
		// as Recover does, then apply the tail on top.
		ns := NewWALState()
		if err := json.Unmarshal(batch.Snapshot, ns); err != nil {
			f.misses++
			f.lastErr = fmt.Errorf("cluster: decoding replica snapshot: %w", err)
			return f.lastErr
		}
		if ns.AppliedSeq < batch.SnapshotSeq {
			ns.AppliedSeq = batch.SnapshotSeq
		}
		f.st = ns
	}
	for _, rec := range batch.Records {
		if err := f.st.Apply(rec); err != nil {
			f.misses++
			f.lastErr = err
			return err
		}
		f.applied++
	}
	f.leaderSeq = batch.Seq
	f.epoch = batch.Epoch
	f.misses = 0
	f.polls++
	f.lastErr = nil
	return nil
}

func (f *Follower) fetch(after uint64) (journal.Batch, error) {
	var b journal.Batch
	url := fmt.Sprintf("%s%s?after=%d", f.cfg.Leader, replicaWALPath, after)
	resp, err := f.cfg.Client.Get(url)
	if err != nil {
		return b, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return b, fmt.Errorf("cluster: replica poll: %s", resp.Status)
	}
	return b, json.NewDecoder(resp.Body).Decode(&b)
}

// LeaderDead reports whether consecutive poll failures have expired the
// leader's lease.
func (f *Follower) LeaderDead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.misses >= f.cfg.DeadAfter
}

// leaderCorroborated consults the second path — the fleet's controllers —
// before the standby acts on an expired lease. It returns true (hold the
// promotion) when any reachable controller reports the replicated epoch,
// or a newer one, asserted within the corroboration window: the leader is
// alive and commanding on some network path even though this standby
// cannot reach it, and promoting would fence off a healthy leader. It also
// returns true when no controller answers at all — a standby partitioned
// from the whole fleet has no one to adopt and must not claim leadership
// on zero evidence. With no controllers configured it returns false, so
// lease expiry alone decides (the standalone-follower behavior).
func (f *Follower) leaderCorroborated() bool {
	if len(f.cfg.Controllers) == 0 {
		return false
	}
	f.mu.Lock()
	epoch := f.epoch
	f.mu.Unlock()
	reachable := false
	for _, u := range f.cfg.Controllers {
		hz, err := probeHealthz(f.cfg.Client, u, f.cfg.PollInterval+2*time.Second)
		if err != nil {
			continue
		}
		reachable = true
		if epoch > 0 && hz.FencedEpoch >= epoch &&
			hz.EpochAgeSeconds <= f.cfg.CorroborationWindow.Seconds() {
			return true
		}
	}
	return !reachable
}

// Status returns the standby's replication view.
func (f *Follower) Status() ReplicationStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := ReplicationStatus{
		Leader:            f.cfg.Leader,
		AppliedSeq:        f.st.AppliedSeq,
		LeaderSeq:         f.leaderSeq,
		Epoch:             f.epoch,
		Polls:             f.polls,
		Applied:           f.applied,
		ConsecutiveMisses: f.misses,
		LeaderDead:        f.misses >= f.cfg.DeadAfter,
		PromotionsHeld:    f.held,
	}
	if f.leaderSeq > f.st.AppliedSeq {
		st.Lag = f.leaderSeq - f.st.AppliedSeq
	}
	if f.lastErr != nil {
		st.LastError = f.lastErr.Error()
	}
	return st
}

// ReplicaState returns the warm replica (the follower's own copy — callers
// promote with it, after which the follower must not be polled again).
func (f *Follower) ReplicaState() *WALState {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// Placements returns a copy of the replica's placement map, safe to read
// while the poll loop keeps applying.
func (f *Follower) Placements() map[string]string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]string, len(f.st.Placements))
	for name, node := range f.st.Placements {
		out[name] = node
	}
	return out
}

// Run polls until ctx is done or the leader's lease expires uncorroborated;
// it returns true when the lease expired and no controller vouched for the
// leader (the caller should promote) and false on context cancellation.
// While controllers corroborate the leader as alive — an asymmetric
// partition between standby and leader — the standby keeps tailing via
// whatever polls get through and counts the held promotion instead of
// triggering a false failover.
func (f *Follower) Run(ctx context.Context) bool {
	t := time.NewTicker(f.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			f.PollOnce()
			if f.LeaderDead() {
				if f.leaderCorroborated() {
					f.mu.Lock()
					f.held++
					f.mu.Unlock()
					continue
				}
				return true
			}
		}
	}
}

// SetTelemetry registers the standby's replication gauges: applied/leader
// sequence, lag, poll counters, and lease state.
func (f *Follower) SetTelemetry(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	r := sink.Registry
	stat := func(name, help string, read func(ReplicationStatus) float64) {
		r.GaugeFunc(name, help, nil, func() float64 { return read(f.Status()) })
	}
	stat("deflation_replica_applied_seq", "last WAL sequence applied to the warm replica",
		func(s ReplicationStatus) float64 { return float64(s.AppliedSeq) })
	stat("deflation_replica_leader_seq", "leader WAL sequence at the last successful poll",
		func(s ReplicationStatus) float64 { return float64(s.LeaderSeq) })
	stat("deflation_replica_lag_records", "replication lag in WAL records",
		func(s ReplicationStatus) float64 { return float64(s.Lag) })
	stat("deflation_replica_polls", "successful replica polls",
		func(s ReplicationStatus) float64 { return float64(s.Polls) })
	stat("deflation_replica_consecutive_misses", "failed polls since the last success",
		func(s ReplicationStatus) float64 { return float64(s.ConsecutiveMisses) })
}

// StandbyAPI is the HTTP surface a standby serves while tailing: a
// liveness probe and a /v1/state reporting role, replication status, and
// the warm replica's placements. After promotion the daemon swaps this
// handler for the full ManagerAPI.
type StandbyAPI struct {
	f *Follower
}

// NewStandbyAPI wraps a follower.
func NewStandbyAPI(f *Follower) (*StandbyAPI, error) {
	if f == nil {
		return nil, fmt.Errorf("cluster: nil follower")
	}
	return &StandbyAPI{f: f}, nil
}

// Handler returns the standby's routes (GET /v1/healthz, GET /v1/state).
func (a *StandbyAPI) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": RoleStandby})
	})
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, _ *http.Request) {
		status := a.f.Status()
		resp := ManagerStateResponse{
			Role:        RoleStandby,
			Epoch:       status.Epoch,
			Placements:  a.f.Placements(),
			Replication: &status,
		}
		resp.VMs = len(resp.Placements)
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// PromoteStandby turns a warm replica into the acting manager: the standby
// opens its own journal (a fresh term's WAL), installs the replicated
// state, bumps the fencing epoch past every term it has seen — fencing the
// old leader off every controller the moment the new epoch lands — then
// runs the same adoption pass Recover does: anti-entropy reconciliation
// against live node inventories and resolution of in-flight migrations.
// Healthy workloads are never evicted: reconciliation only re-places VMs
// that are journaled but verifiably gone, adopts ones the WAL missed, and
// releases provably stale copies.
func PromoteStandby(cfg DurabilityConfig, st *WALState, servers []Node, policy PlacementPolicy, seed int64) (*Manager, *RecoveryReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	j, err := journal.Open(cfg.Dir, journal.Options{SyncEvery: cfg.SyncEvery, FailOp: cfg.FailOp})
	if err != nil {
		return nil, nil, err
	}
	if st == nil {
		st = NewWALState()
	}
	m, err := NewManager(dialJournaledNodes(cfg, st, servers), policy, seed)
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	rep := &RecoveryReport{
		LastSeq:         st.AppliedSeq,
		RecordsReplayed: 0, // replay happened continuously, while tailing
	}
	m.installWALState(st)
	m.journal = j
	if cfg.LeaderID != "" {
		m.SetIdentity(cfg.LeaderID)
	}
	// New term: every node RPC from here on — including reconciliation's
	// releases and re-placements — carries the bumped epoch, and the fencing
	// sweep raises every reachable node's guard before anything else, so the
	// deposed leader is refused even by nodes this term never commands. The
	// bump clears not just every term this replica has seen but the highest
	// epoch any reachable controller has obeyed — a crashed leader that
	// already restarted into a new term loses the race here instead of
	// tying it.
	e := max(st.Epoch, j.Epoch())
	if ce := m.clusterFencedEpoch(); ce > e {
		e = ce
	}
	m.SetEpoch(e + 1)
	m.fenceAll()
	m.reconcileAll(rep)

	rec := &durableRecorder{m: m, j: j, every: cfg.SnapshotEvery, onErr: cfg.OnWALError}
	m.rec = rec
	m.record(Event{Kind: evLeader})
	rec.snapshot()

	rep.Placements = len(m.placement)
	rep.Duration = time.Since(start)
	return m, rep, nil
}
