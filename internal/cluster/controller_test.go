package cluster

import (
	"errors"
	"testing"

	"deflation/internal/apps/apptest"
	"deflation/internal/cascade"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/vm"
)

func newServer(t *testing.T, mode Mode) *LocalController {
	t.Helper()
	h, err := hypervisor.NewHost(hypervisor.Config{Name: "s0", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatal(err)
	}
	return NewLocalController(h, cascade.AllLevels(), mode)
}

func spec(name string, prio vm.Priority, minFrac float64) LaunchSpec {
	size := restypes.V(4, 16384, 100, 100)
	return LaunchSpec{
		Name: name, Size: size, MinSize: size.Scale(minFrac), Priority: prio,
		NewApp: func(s restypes.Vector) vm.Application {
			a := apptest.NewElastic(name, s.MemoryMB*0.5, s.MemoryMB*0.1)
			return a
		},
	}
}

func TestLaunchBasics(t *testing.T) {
	c := newServer(t, ModeDeflation)
	v, rep, err := c.LaunchVM(spec("a", vm.LowPriority, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "a" || len(rep.Deflated) != 0 || len(rep.Preempted) != 0 {
		t.Errorf("launch report: %+v", rep)
	}
	if _, _, err := c.LaunchVM(spec("a", vm.LowPriority, 0.25)); !errors.Is(err, ErrVMExists) {
		t.Errorf("duplicate launch err = %v", err)
	}
	if _, _, err := c.LaunchVM(LaunchSpec{Name: "b", Size: restypes.V(1, 1, 1, 1)}); err == nil {
		t.Error("launch without NewApp accepted")
	}
	if _, err := c.VM("a"); err != nil {
		t.Errorf("VM lookup: %v", err)
	}
	if _, err := c.VM("nope"); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("missing VM err = %v", err)
	}
	if got := len(c.VMs()); got != 1 {
		t.Errorf("VMs = %d", got)
	}
}

func TestLaunchDeflatesResidents(t *testing.T) {
	c := newServer(t, ModeDeflation)
	// Fill: 4 VMs × (4, 16384, 100, 100) consumes the host entirely.
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, _, err := c.LaunchVM(spec(n, vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Free().IsZero() {
		t.Fatalf("host not full: %v", c.Free())
	}
	// Fifth VM fits only by deflating the other four.
	_, rep, err := c.LaunchVM(spec("e", vm.LowPriority, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deflated) != 4 {
		t.Errorf("deflated %v, want all 4 residents", rep.Deflated)
	}
	if len(rep.Preempted) != 0 {
		t.Errorf("preempted %v, want none", rep.Preempted)
	}
	// Proportional: each resident gave up a quarter of the demand.
	for _, n := range []string{"a", "b", "c", "d"} {
		v, _ := c.VM(n)
		want := restypes.V(3, 12288, 75, 75)
		if v.Allocation() != want {
			t.Errorf("VM %s allocation = %v, want %v", n, v.Allocation(), want)
		}
	}
}

func TestHighPriorityNeverDeflated(t *testing.T) {
	c := newServer(t, ModeDeflation)
	if _, _, err := c.LaunchVM(spec("hi", vm.HighPriority, 0)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c"} {
		if _, _, err := c.LaunchVM(spec(n, vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	_, rep, err := c.LaunchVM(spec("d", vm.LowPriority, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range rep.Deflated {
		if name == "hi" {
			t.Error("high-priority VM was deflated")
		}
	}
	hi, _ := c.VM("hi")
	if hi.Allocation() != hi.Size() {
		t.Errorf("high-priority allocation %v shrank", hi.Allocation())
	}
}

func TestLowPriorityCannotPreempt(t *testing.T) {
	c := newServer(t, ModeDeflation)
	// Fill with lows at min 0.9 (almost nothing deflatable).
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, _, err := c.LaunchVM(spec(n, vm.LowPriority, 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := c.LaunchVM(spec("e", vm.LowPriority, 0.9))
	if !errors.Is(err, ErrNoCapacity) {
		t.Errorf("low-priority launch err = %v, want ErrNoCapacity", err)
	}
	if c.Preemptions() != 0 {
		t.Error("low-priority launch preempted VMs")
	}
}

func TestHighPriorityPreemptsBeyondMinimums(t *testing.T) {
	c := newServer(t, ModeDeflation)
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, _, err := c.LaunchVM(spec(n, vm.LowPriority, 0.9)); err != nil {
			t.Fatal(err)
		}
	}
	_, rep, err := c.LaunchVM(spec("hi", vm.HighPriority, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Preempted) == 0 {
		t.Error("high-priority launch did not preempt despite tight minimums")
	}
	if c.Preemptions() != len(rep.Preempted) {
		t.Errorf("preemption counter %d != report %d", c.Preemptions(), len(rep.Preempted))
	}
	// The preempted VM is gone.
	if _, err := c.VM(rep.Preempted[0]); !errors.Is(err, ErrVMNotFound) {
		t.Error("preempted VM still registered")
	}
}

func TestPreemptionOnlyModePreemptsInsteadOfDeflating(t *testing.T) {
	c := newServer(t, ModePreemptionOnly)
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, _, err := c.LaunchVM(spec(n, vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	_, rep, err := c.LaunchVM(spec("hi", vm.HighPriority, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deflated) != 0 {
		t.Errorf("preemption-only mode deflated %v", rep.Deflated)
	}
	if len(rep.Preempted) == 0 {
		t.Error("preemption-only mode did not preempt")
	}
}

func TestReleaseReinflates(t *testing.T) {
	c := newServer(t, ModeDeflation)
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		if _, _, err := c.LaunchVM(spec(n, vm.LowPriority, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	// All five deflated to 80% of nominal. Release one.
	if err := c.Release("e"); err != nil {
		t.Fatal(err)
	}
	if err := c.Release("e"); !errors.Is(err, ErrVMNotFound) {
		t.Errorf("double release err = %v", err)
	}
	// Survivors reinflated back to full size.
	for _, n := range []string{"a", "b", "c", "d"} {
		v, _ := c.VM(n)
		if v.Allocation() != v.Size() {
			t.Errorf("VM %s allocation = %v after release, want %v", n, v.Allocation(), v.Size())
		}
	}
}

func TestAvailabilityAccounting(t *testing.T) {
	c := newServer(t, ModeDeflation)
	if _, _, err := c.LaunchVM(spec("a", vm.LowPriority, 0.25)); err != nil {
		t.Fatal(err)
	}
	free := restypes.V(12, 49152, 300, 300)
	defl := restypes.V(3, 12288, 75, 75)
	if c.Free() != free {
		t.Errorf("Free = %v", c.Free())
	}
	if c.Deflatable() != defl {
		t.Errorf("Deflatable = %v", c.Deflatable())
	}
	if c.Availability() != free.Add(defl) {
		t.Errorf("Availability = %v", c.Availability())
	}
	if got := c.PreemptableCeiling(); got != free.Add(restypes.V(4, 16384, 100, 100)) {
		t.Errorf("PreemptableCeiling = %v", got)
	}
	if got := c.NominalSize(); got != restypes.V(4, 16384, 100, 100) {
		t.Errorf("NominalSize = %v", got)
	}
	if oc := c.Overcommitment(); oc != 0.25 {
		t.Errorf("Overcommitment = %g, want 0.25 (4/16 CPU)", oc)
	}
}

func TestModeString(t *testing.T) {
	if ModeDeflation.String() != "deflation" || ModePreemptionOnly.String() != "preemption-only" {
		t.Error("mode strings wrong")
	}
}
