package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"deflation/internal/telemetry"
	"deflation/internal/vm"
)

// counterValue fetches a labeled counter's current value straight from the
// registry (get-or-create returns the same instance the code under test
// incremented; a zero-valued counter means the metric never fired).
func counterValue(s *telemetry.Sink, name string, labels telemetry.Labels) float64 {
	return s.Registry.Counter(name, "", labels).Value()
}

// TestChaosSimTelemetry runs the chaos simulation with a telemetry sink
// attached and asserts that injected faults surface in the registry and the
// cascade trace: heartbeat misses, node-down declarations, and evictions
// all count nonzero, cascade decisions land in the tracer with the level
// actually reached, and injected agent failures show up as app-level
// failure counters.
func TestChaosSimTelemetry(t *testing.T) {
	sink := telemetry.NewSink()
	cfg := chaosSim()
	cfg.Telemetry = sink
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeCrashes == 0 {
		t.Fatal("chaos config injected no crashes; telemetry assertions are vacuous")
	}

	// Failure-detector counters mirror the sim's own accounting.
	if v := counterValue(sink, "deflation_manager_heartbeat_misses_total", nil); v == 0 {
		t.Error("heartbeat misses counter is zero despite node crashes")
	}
	if v := counterValue(sink, "deflation_manager_node_down_total", nil); v == 0 {
		t.Error("node-down counter is zero despite node crashes")
	}
	if got, want := counterValue(sink, "deflation_manager_evictions_total", nil), float64(res.FailurePreemptions); got != want {
		t.Errorf("evictions counter = %v, want %v (sim's FailurePreemptions)", got, want)
	}
	if got, want := counterValue(sink, "deflation_manager_vm_replaced_total", nil), float64(res.VMsReplaced); got != want {
		t.Errorf("vm-replaced counter = %v, want %v", got, want)
	}
	if got, want := counterValue(sink, "deflation_manager_vm_lost_total", nil), float64(res.VMsLost); got != want {
		t.Errorf("vm-lost counter = %v, want %v", got, want)
	}

	// Cascade decisions were traced, and the recorded level matches the
	// event's own reclamation vectors on every retained event.
	if sink.Tracer.Total() == 0 {
		t.Fatal("no cascade events traced")
	}
	deflates := 0
	for _, e := range sink.Tracer.Last(telemetry.DefaultTraceCapacity) {
		if e.Kind == "deflate" {
			deflates++
		}
		want := "none"
		switch {
		case !e.HypReclaimed.IsZero():
			want = "hypervisor"
		case !e.OSReclaimed.IsZero():
			want = "os"
		case !e.AppReclaimed.IsZero():
			want = "app"
		}
		if e.LevelReached != want {
			t.Fatalf("event %d: LevelReached = %q, want %q (app %v, os %v, hyp %v)",
				e.Seq, e.LevelReached, want, e.AppReclaimed, e.OSReclaimed, e.HypReclaimed)
		}
	}
	if deflates == 0 {
		t.Error("no deflate events among the retained trace")
	}

	// Injected agent faults (AgentFailProb > 0) register as app-level
	// failures on at least one server. Level failure counters are labeled
	// per node, so sum across the snapshot.
	var appFailures float64
	for _, m := range sink.Registry.Snapshot() {
		if m.Name == "deflation_cascade_level_failures_total" && m.Labels["level"] == "app" {
			appFailures += m.Value
		}
	}
	if appFailures == 0 {
		t.Error("no app-level cascade failures counted despite AgentFailProb > 0")
	}

	// The instrumented sink renders: a smoke check that the whole registry
	// survives text exposition with label-heavy families.
	text := sink.Registry.Text()
	for _, want := range []string{
		"deflation_cascade_deflations_total",
		"deflation_manager_placements_total",
		"deflation_cascade_level_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestRemoteNodeRetryTelemetry drives a RemoteNode against a server that
// 5xxs twice, and asserts the retry and latency instruments fire.
func TestRemoteNodeRetryTelemetry(t *testing.T) {
	_, ctrl := newControllerServer(t)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	base := api.Handler()
	var failing atomic.Bool
	var fails atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() && fails.Add(1) <= 2 {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		base.ServeHTTP(w, r)
	}))
	defer srv.Close()

	node, err := NewRemoteNodeWithPolicy(srv.URL, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	recordSleeps(node)
	sink := telemetry.NewSink()
	node.SetTelemetry(sink)

	failing.Store(true)
	if _, err := node.State(); err != nil {
		t.Fatalf("State after two 5xxs: %v", err)
	}
	nl := telemetry.Labels{"node": node.Name()}
	if got := counterValue(sink, "deflation_rpc_retries_total", nl); got != 2 {
		t.Errorf("retries counter = %v, want 2", got)
	}
	h := sink.Registry.Histogram("deflation_rpc_seconds", "", telemetry.DefBuckets(),
		telemetry.Labels{"node": node.Name(), "op": "state"})
	if h.Count() != 1 {
		t.Errorf("state RPC histogram count = %d, want 1", h.Count())
	}

	// A transport-level failure (connection refused) also counts.
	if _, err := node.Launch(wireSpec("x", vm.LowPriority)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := node.Ping(); err == nil {
		t.Fatal("ping of closed server succeeded")
	}
	if got := counterValue(sink, "deflation_rpc_transport_errors_total", nl); got == 0 {
		t.Error("transport-errors counter is zero after pinging a closed server")
	}
}

// TestAPIAttachTelemetryGauges registers the API-layer gauges and verifies
// they track controller state at scrape time.
func TestAPIAttachTelemetryGauges(t *testing.T) {
	ctrl := newServer(t, ModeDeflation)
	api, err := NewControllerAPI(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.NewSink()
	api.AttachTelemetry(sink)

	gauge := func(name string, labels telemetry.Labels) float64 {
		for _, m := range sink.Registry.Snapshot() {
			if m.Name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if m.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return m.Value
			}
		}
		t.Fatalf("gauge %s%v not found", name, labels)
		return 0
	}

	if got := gauge("deflation_node_vms", nil); got != 0 {
		t.Errorf("vms gauge = %v before any launch", got)
	}
	if _, err := ctrl.Launch(wireSpec("a", vm.LowPriority)); err != nil {
		t.Fatal(err)
	}
	if got := gauge("deflation_node_vms", nil); got != 1 {
		t.Errorf("vms gauge = %v after launch, want 1", got)
	}
	spec := wireSpec("a", vm.LowPriority)
	if got := gauge("deflation_node_allocated", telemetry.Labels{"resource": "cpu"}); got != spec.Size.CPU {
		t.Errorf("allocated cpu gauge = %v, want %v", got, spec.Size.CPU)
	}
	cap := ctrl.Host().Capacity()
	if got := gauge("deflation_node_free", telemetry.Labels{"resource": "memory"}); got != cap.MemoryMB-spec.Size.MemoryMB {
		t.Errorf("free memory gauge = %v, want %v", got, cap.MemoryMB-spec.Size.MemoryMB)
	}
	if got := gauge("deflation_node_nominal", telemetry.Labels{"resource": "cpu"}); got != spec.Size.CPU {
		t.Errorf("nominal cpu gauge = %v, want %v", got, spec.Size.CPU)
	}
}
