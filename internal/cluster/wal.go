package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"deflation/internal/journal"
	"deflation/internal/telemetry"
	"deflation/internal/vm"
)

// This file is the manager's durability layer: every placement, priority,
// and failure-detector transition is recorded through a Recorder into an
// append-only journal (internal/journal), periodically compacted into a
// snapshot, and rebuilt by Recover — replay first, then an anti-entropy
// reconciliation pass against each live node's actual VM inventory. The
// Recorder is nil by default (no-op, mirroring SimConfig.Telemetry): a
// manager without a state dir pays nothing.

// Event kinds journaled by the manager. Each is one state transition; the
// set is append-only so old journals stay replayable.
const (
	evLaunch   = "launch"    // user-facing placement (Spec, Node, Preempted)
	evReject   = "reject"    // launch found no feasible server
	evRelease  = "release"   // normal end of life
	evPreempt  = "preempt"   // capacity preemption observed out-of-band
	evNodeDown = "node-down" // failure detector declared the node dead
	evNodeUp   = "node-up"   // dead node rejoined
	evEvict    = "evict"     // VM declared lost-in-place on a dead node
	evReplace  = "replace"   // evicted VM re-placed (Spec, new Node, Preempted)
	evLost     = "lost"      // evicted VM no healthy node could host
	evAdopt    = "adopt"     // VM found on a node, adopted into the placement
	evStale    = "stale"     // stale VM copy released from a rejoined node

	// Migration events. The intent journals before any state moves and the
	// placement changes only at migrate-done, so a crash at any point
	// between them recovers with the VM still placed on its source; the
	// reconciliation pass resolves the in-flight entry by asking the
	// destination whether the copy completed.
	evMigrateStart = "migrate-start" // migration intent (From → Node)
	evMigrateDone  = "migrate-done"  // switchover complete; placement moves
	evMigrateFail  = "migrate-fail"  // rolled back to the source

	// evLeader journals a leadership assumption. The record carries no
	// event payload beyond its kind; the new term's fencing epoch rides in
	// the record's Epoch field (stamped on every record), so replicas and
	// replay learn the term change the moment the record lands.
	evLeader = "leader"

	// Dynamic fleet membership. evNodeAdd journals a node registration
	// (Node + URL) so a recovery — or a peer adopting this shard's journal —
	// can re-dial the same agents the dead manager was serving; evNodeRemove
	// journals a hand-off (cross-shard rebalance), dropping the node and
	// every placement on it WITHOUT releasing anything: the node and its
	// VMs live on under whichever manager now owns them.
	evNodeAdd    = "node-add"
	evNodeRemove = "node-remove"
)

// Event is one journaled manager state transition, JSON-serializable.
// Spec omits NewApp (functions do not serialize); remote and AppKind-based
// launches replay fully, local closures replay as placements without a
// relaunchable app (re-placement then falls back to registered kinds).
type Event struct {
	Kind      string      `json:"kind"`
	VM        string      `json:"vm,omitempty"`
	Node      string      `json:"node,omitempty"`
	Spec      *LaunchSpec `json:"spec,omitempty"`
	Preempted []string    `json:"preempted,omitempty"`
	// From is the source node of a migration event (Node is the
	// destination).
	From string `json:"from,omitempty"`
	// URL is the node's control endpoint (node-add events only).
	URL string `json:"url,omitempty"`
}

// Recorder receives every manager state transition. Implementations must
// not call back into the manager. A nil recorder on the manager disables
// recording entirely.
type Recorder interface {
	Record(Event)
}

// record forwards a transition to the attached recorder, if any.
func (m *Manager) record(e Event) {
	if m.rec != nil {
		m.rec.Record(e)
	}
}

// WALState is the manager's durable state in wire form: the compacted
// snapshot payload, and the structure journal replay rebuilds. Placements
// reference servers by name, not index, so a fleet can be re-declared in a
// different order across restarts.
type WALState struct {
	// AppliedSeq is the last journal sequence folded into this state.
	// Apply is idempotent through it: records at or below it are no-ops,
	// so double-replay equals single-replay.
	AppliedSeq uint64 `json:"applied_seq"`
	// Epoch is the highest leadership fencing epoch seen across applied
	// records — the term of the leader whose WAL this state mirrors.
	Epoch      uint64                `json:"epoch,omitempty"`
	Placements map[string]string     `json:"placements,omitempty"` // VM → node name
	Specs      map[string]LaunchSpec `json:"specs,omitempty"`
	Dead       map[string]bool       `json:"dead,omitempty"` // nodes marked dead

	// Nodes holds dynamically registered agents (name → control URL), so a
	// recovery — or a peer adopting this journal — can re-dial the same
	// fleet the recorded manager was serving. Statically configured servers
	// never appear here.
	Nodes map[string]string `json:"nodes,omitempty"`

	// Migrating holds in-flight migrations: intents journaled (or
	// snapshotted) without a matching done/fail event. Recovery resolves
	// each by asking the destination whether the copy completed.
	Migrating map[string]MigrationIntent `json:"migrating,omitempty"`

	Rejected           int `json:"rejected,omitempty"`
	FailurePreemptions int `json:"failure_preemptions,omitempty"`
	Replaced           int `json:"replaced,omitempty"`
	Lost               int `json:"lost,omitempty"`
	Adopted            int `json:"adopted,omitempty"`
	StaleReleased      int `json:"stale_released,omitempty"`
	Migrations         int `json:"migrations,omitempty"`
	MigrationFailures  int `json:"migration_failures,omitempty"`
}

// MigrationIntent is one journaled in-flight migration: source and
// destination node names.
type MigrationIntent struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// NewWALState returns an empty state ready for replay.
func NewWALState() *WALState {
	return &WALState{
		Placements: make(map[string]string),
		Specs:      make(map[string]LaunchSpec),
		Dead:       make(map[string]bool),
		Nodes:      make(map[string]string),
		Migrating:  make(map[string]MigrationIntent),
	}
}

// Apply folds one journal record into the state. It is idempotent and
// crash-point-insensitive: records already covered by AppliedSeq are
// skipped, unknown kinds are ignored (forward compatibility), and every
// transition maps to a set/delete so replaying any prefix of the log yields
// a consistent state.
func (s *WALState) Apply(rec journal.Record) error {
	if rec.Seq <= s.AppliedSeq {
		return nil
	}
	var e Event
	if err := json.Unmarshal(rec.Data, &e); err != nil {
		return fmt.Errorf("cluster: replaying record %d: %w", rec.Seq, err)
	}
	if rec.Epoch > s.Epoch {
		s.Epoch = rec.Epoch
	}
	switch e.Kind {
	case evLeader:
		// Leadership assumption: no placement change; the epoch bump above
		// is the whole transition.
	case evLaunch, evReplace, evAdopt:
		s.Placements[e.VM] = e.Node
		if e.Spec != nil {
			s.Specs[e.VM] = *e.Spec
		}
		for _, name := range e.Preempted {
			delete(s.Placements, name)
			delete(s.Specs, name)
		}
		switch e.Kind {
		case evReplace:
			s.Replaced++
		case evAdopt:
			s.Adopted++
		}
	case evReject:
		s.Rejected++
	case evRelease, evPreempt:
		delete(s.Placements, e.VM)
		delete(s.Specs, e.VM)
	case evEvict:
		delete(s.Placements, e.VM)
		s.FailurePreemptions++
	case evLost:
		delete(s.Specs, e.VM)
		s.Lost++
	case evNodeDown:
		s.Dead[e.Node] = true
	case evNodeUp:
		delete(s.Dead, e.Node)
	case evNodeAdd:
		if s.Nodes == nil {
			s.Nodes = make(map[string]string)
		}
		s.Nodes[e.Node] = e.URL
	case evNodeRemove:
		delete(s.Nodes, e.Node)
		delete(s.Dead, e.Node)
		// A hand-off takes the node's placements with it (the new owner
		// adopts them from the node's inventory); nothing is released.
		for vmName, node := range s.Placements {
			if node == e.Node {
				delete(s.Placements, vmName)
				delete(s.Specs, vmName)
			}
		}
	case evStale:
		s.StaleReleased++
	case evMigrateStart:
		if s.Migrating == nil {
			s.Migrating = make(map[string]MigrationIntent)
		}
		s.Migrating[e.VM] = MigrationIntent{From: e.From, To: e.Node}
	case evMigrateDone:
		delete(s.Migrating, e.VM)
		s.Placements[e.VM] = e.Node
		s.Migrations++
	case evMigrateFail:
		delete(s.Migrating, e.VM)
		s.MigrationFailures++
	}
	s.AppliedSeq = rec.Seq
	return nil
}

// walState captures the manager's current durable state in wire form.
func (m *Manager) walState() *WALState {
	st := NewWALState()
	for name, idx := range m.placement {
		st.Placements[name] = m.servers[idx].Name()
	}
	for name, spec := range m.specs {
		spec.NewApp = nil
		st.Specs[name] = spec
	}
	for i, h := range m.health {
		if h.dead {
			st.Dead[m.servers[i].Name()] = true
		}
	}
	for name, intent := range m.inflight {
		st.Migrating[name] = intent
	}
	for name, url := range m.nodeURLs {
		st.Nodes[name] = url
	}
	st.Epoch = m.epoch
	st.Rejected = m.rejected
	st.FailurePreemptions = m.failurePreemptions
	st.Replaced = m.replacedVMs
	st.Lost = m.lostVMs
	st.Adopted = m.adoptedVMs
	st.StaleReleased = m.staleReleases
	st.Migrations = m.migrations
	st.MigrationFailures = m.migrationFailures
	return st
}

// durableRecorder appends every transition to a journal and compacts a
// snapshot every SnapshotEvery records. It runs on the manager's goroutine
// (all manager access serializes through the API mutex), so reading manager
// state for the snapshot is safe.
//
// A failed append is fail-stop, not best-effort: the journal poisons itself
// (refusing further writes), the error is surfaced through Manager.WALError
// and the onErr callback, and the manager is expected to stand down — a
// leader that keeps mutating the cluster while its WAL silently drops
// records would diverge from what its standby (or its own recovery)
// reconstructs.
type durableRecorder struct {
	m         *Manager
	j         *journal.Journal
	every     int
	sinceSnap int
	onErr     func(error) // invoked once, on the first append/snapshot failure
	failed    bool
}

func (r *durableRecorder) Record(e Event) {
	if r.failed {
		return
	}
	if _, err := r.j.Append(e.Kind, e); err != nil {
		r.fail(err)
		return
	}
	r.sinceSnap++
	if r.sinceSnap >= r.every {
		r.snapshot()
	}
}

func (r *durableRecorder) fail(err error) {
	if r.failed {
		return
	}
	r.failed = true
	r.m.walErr = err
	if r.onErr != nil {
		r.onErr(err)
	}
}

func (r *durableRecorder) snapshot() {
	st := r.m.walState()
	st.AppliedSeq = r.j.Seq()
	err := r.j.Snapshot(st)
	switch {
	case err == nil:
		r.sinceSnap = 0
	case errors.Is(err, journal.ErrPoisoned):
		r.fail(err)
	}
}

// DurabilityConfig parameterizes the manager's journal.
type DurabilityConfig struct {
	// Dir is the state directory holding journal.log and snapshot.json.
	Dir string
	// LeaderID is this manager's identity, stamped with the epoch on every
	// fenced RPC so controllers can break same-epoch ties (two managers
	// that each self-allocated the same term). Empty keeps the legacy
	// epoch-only token.
	LeaderID string
	// SnapshotEvery compacts a snapshot after this many journal records
	// (default 256).
	SnapshotEvery int
	// SyncEvery batches journal fsyncs (default journal.Options's 8).
	SyncEvery int
	// FailOp, when non-nil, injects disk faults into the journal (see
	// journal.Options.FailOp). Used by chaos sims and smoke tests.
	FailOp func(op string) error
	// DialNode, when non-nil, reconnects dynamically registered agents
	// (journaled node-add events) that are absent from the static fleet:
	// Recover calls it for each journaled name/URL before replay installs
	// placements, so an adopting peer reaches the dead shard's agents. The
	// dialer must NOT require the agent to be reachable — an agent that is
	// briefly partitioned keeps its placements until the failure detector
	// decides, exactly as Placed() does. NewRemoteNodeNamed qualifies.
	DialNode func(name, url string) (Node, error)
	// OnWALError is invoked once when a journal write fails and the
	// recorder fail-stops. The manager should stand down as leader; the
	// daemon exits so a standby (or supervisor) takes over.
	OnWALError func(error)
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	return c
}

// RecoveryReport summarizes one Recover: what was replayed and what the
// anti-entropy pass had to repair.
type RecoveryReport struct {
	SnapshotSeq     uint64 `json:"snapshot_seq"`
	LastSeq         uint64 `json:"last_seq"`
	RecordsReplayed int    `json:"records_replayed"`
	TornTail        bool   `json:"torn_tail,omitempty"`
	// Placements is the recovered placement count after reconciliation.
	Placements int `json:"placements"`
	// Reconciliation repairs by kind: Adopted VMs ran on a node without a
	// journal entry; Replaced/Lost were journaled but gone from their node
	// (re-placed via the evacuation path, or unplaceable); Reasserted specs
	// diverged from the node's ground-truth allocation; StaleReleased
	// copies were journaled on a different node than the one running them.
	Adopted       int `json:"adopted"`
	Replaced      int `json:"replaced"`
	Lost          int `json:"lost"`
	Reasserted    int `json:"reasserted"`
	StaleReleased int `json:"stale_released"`
	// MigrationsResolved/MigrationsRolledBack settle migrations that were
	// in flight at crash time: resolved means the destination held the
	// copy (the move is adopted), rolled back means the VM stayed on its
	// source.
	MigrationsResolved   int           `json:"migrations_resolved"`
	MigrationsRolledBack int           `json:"migrations_rolled_back"`
	Duration             time.Duration `json:"duration_ns"`
}

// Publish registers the recovery outcome in a telemetry sink: repairs by
// kind, replayed record count, and recovery duration.
func (rep *RecoveryReport) Publish(sink *telemetry.Sink) {
	if rep == nil || sink == nil {
		return
	}
	r := sink.Registry
	for kind, n := range map[string]int{
		"adopted":        rep.Adopted,
		"replaced":       rep.Replaced,
		"lost":           rep.Lost,
		"reasserted":     rep.Reasserted,
		"stale-released": rep.StaleReleased,
	} {
		r.Counter("deflation_recovery_repairs_total",
			"anti-entropy reconciliation repairs during manager recovery",
			telemetry.Labels{"kind": kind}).Add(float64(n))
	}
	r.Gauge("deflation_recovery_records_replayed",
		"journal records replayed by the last recovery", nil).Set(float64(rep.RecordsReplayed))
	r.Gauge("deflation_recovery_duration_seconds",
		"wall-clock duration of the last recovery (replay + reconciliation)", nil).Set(rep.Duration.Seconds())
}

// InventoryNode is implemented by nodes that can enumerate the VMs they
// actually run — the ground truth the anti-entropy pass reconciles against.
// LocalController and RemoteNode both implement it; nodes that cannot are
// skipped by reconciliation.
type InventoryNode interface {
	Inventory() ([]VMState, error)
}

var errNoInventory = errors.New("cluster: node does not expose a VM inventory")

func nodeInventory(n Node) ([]VMState, error) {
	inv, ok := n.(InventoryNode)
	if !ok {
		return nil, errNoInventory
	}
	return inv.Inventory()
}

// specFromVMState reconstructs a launch spec from a node's ground-truth VM
// state, used when adopting VMs the journal does not know. The app kind is
// the VM's own app name when registered, else the generic elastic/inelastic
// kind for its priority.
func specFromVMState(vs VMState) LaunchSpec {
	spec := LaunchSpec{Name: vs.Name, Size: vs.Size, MinSize: vs.MinSize, Warm: true,
		Substrate: vs.Substrate}
	if vs.Priority == vm.HighPriority.String() {
		spec.Priority = vm.HighPriority
	}
	if _, err := AppKind(vs.App); err == nil {
		spec.AppKind = vs.App
	} else if spec.Priority == vm.HighPriority {
		spec.AppKind = "inelastic"
	} else {
		spec.AppKind = "elastic"
	}
	return spec
}

// Recover rebuilds a manager from a state directory: it loads the snapshot,
// replays the journal tail idempotently, restores placements, specs,
// counters, and failure-detector state, then runs an anti-entropy
// reconciliation pass against each live node's actual inventory — VMs the
// journal knows but the node lost are re-placed via the evacuation path,
// VMs the node runs but the journal missed are adopted, diverged
// allocations are re-asserted from the node's ground truth, and stale
// copies are released. The journal stays attached for continued recording,
// and a fresh compacted snapshot is written so the next recovery starts
// warm. An empty directory recovers to an empty state (plus any adoptions),
// so Recover is also the first-boot entry point.
func Recover(cfg DurabilityConfig, servers []Node, policy PlacementPolicy, seed int64) (*Manager, *RecoveryReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	j, err := journal.Open(cfg.Dir, journal.Options{SyncEvery: cfg.SyncEvery, FailOp: cfg.FailOp})
	if err != nil {
		return nil, nil, err
	}

	st := NewWALState()
	if raw := j.SnapshotData(); raw != nil {
		if err := json.Unmarshal(raw, st); err != nil {
			j.Close()
			return nil, nil, fmt.Errorf("cluster: decoding snapshot: %w", err)
		}
	}
	jstats := j.Stats()
	if jstats.SnapshotSeq > st.AppliedSeq {
		st.AppliedSeq = jstats.SnapshotSeq
	}
	rep := &RecoveryReport{
		SnapshotSeq:     jstats.SnapshotSeq,
		LastSeq:         jstats.Seq,
		RecordsReplayed: len(j.Tail()),
		TornTail:        jstats.TornTail,
	}
	for _, rec := range j.Tail() {
		if err := st.Apply(rec); err != nil {
			j.Close()
			return nil, nil, err
		}
	}

	// Re-dial dynamically registered agents the journal knows but the static
	// fleet does not, BEFORE placements install — otherwise their VMs would
	// look orphaned and be re-placed (a healthy-VM eviction). This is the
	// heart of cross-shard adoption: a peer replaying a dead shard's journal
	// reconstructs its fleet from the node-add records.
	servers = dialJournaledNodes(cfg, st, servers)

	m, err := NewManager(servers, policy, seed)
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	m.installWALState(st)
	m.reconcileAll(rep)

	// Attach the journal for continued recording, then compact everything
	// recovery just established into a fresh snapshot.
	rec := &durableRecorder{m: m, j: j, every: cfg.SnapshotEvery, onErr: cfg.OnWALError}
	m.rec = rec
	m.journal = j
	if cfg.LeaderID != "" {
		m.SetIdentity(cfg.LeaderID)
	}
	// Resume the recovered leadership epoch (journal metadata may be ahead
	// of the replayed state if only the snapshot envelope survived).
	if e := max(st.Epoch, j.Epoch()); e > 0 {
		m.SetEpoch(e)
	}
	rec.snapshot()

	rep.Placements = len(m.placement)
	rep.Duration = time.Since(start)
	return m, rep, nil
}

// dialJournaledNodes reconnects dynamically registered agents the journal
// knows but the static fleet does not (see DurabilityConfig.DialNode).
// Dial failures leave the node out; its placements orphan and re-place.
func dialJournaledNodes(cfg DurabilityConfig, st *WALState, servers []Node) []Node {
	if cfg.DialNode == nil || len(st.Nodes) == 0 {
		return servers
	}
	have := make(map[string]bool, len(servers))
	for _, s := range servers {
		have[s.Name()] = true
	}
	names := make([]string, 0, len(st.Nodes))
	for name := range st.Nodes {
		if !have[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		n, err := cfg.DialNode(name, st.Nodes[name])
		if err != nil {
			continue
		}
		servers = append(servers, n)
	}
	return servers
}

// installWALState loads a replayed state into a fresh manager. Placements
// naming servers absent from the fleet become orphans, re-placed by the
// reconciliation pass.
func (m *Manager) installWALState(st *WALState) {
	byName := make(map[string]int, len(m.servers))
	for i, s := range m.servers {
		byName[s.Name()] = i
	}
	for node := range st.Dead {
		if i, ok := byName[node]; ok {
			m.health[i].dead = true
		}
	}
	// Dynamically registered agents keep their journaled endpoint so future
	// recordings (and a later adoption by a peer) can re-dial them.
	for name, url := range st.Nodes {
		if _, ok := byName[name]; ok {
			m.nodeURLs[name] = url
		}
	}
	var orphans []string
	for name, node := range st.Placements {
		if i, ok := byName[node]; ok {
			m.placement[name] = i
		} else {
			orphans = append(orphans, name)
		}
		m.specs[name] = st.Specs[name]
	}
	sort.Strings(orphans)
	m.recoveryOrphans = orphans
	if len(st.Migrating) > 0 {
		m.recoveryMigrations = make(map[string]MigrationIntent, len(st.Migrating))
		for name, intent := range st.Migrating {
			m.recoveryMigrations[name] = intent
		}
	}
	m.epoch = st.Epoch
	m.rejected = st.Rejected
	m.failurePreemptions = st.FailurePreemptions
	m.replacedVMs = st.Replaced
	m.lostVMs = st.Lost
	m.adoptedVMs = st.Adopted
	m.staleReleases = st.StaleReleased
	m.migrations = st.Migrations
	m.migrationFailures = st.MigrationFailures
}

// reconcileAll is the anti-entropy pass: every live node's inventory is
// compared against the journaled view and divergence is repaired.
func (m *Manager) reconcileAll(rep *RecoveryReport) {
	// In-flight migrations first, so placements are settled before the
	// generic inventory sweep: the destination's inventory is ground truth
	// for whether the switchover completed before the crash.
	m.resolveRecoveryMigrations(rep)

	// VMs journaled on servers no longer in the fleet: re-place them.
	for _, name := range m.recoveryOrphans {
		spec := m.specs[name]
		delete(m.specs, name)
		m.repairReplace(spec, rep)
	}
	m.recoveryOrphans = nil

	for i, s := range m.servers {
		if m.health[i].dead {
			continue // will reconcile on rejoin, via ProbeHealth
		}
		inv, err := nodeInventory(s)
		if err != nil {
			// Unreachable (or inventory-less): keep the journaled view; the
			// failure detector decides, exactly as Placed() does.
			continue
		}
		onNode := make(map[string]VMState, len(inv))
		for _, vs := range inv {
			onNode[vs.Name] = vs
		}

		// Journal → node: VMs we place here that the node no longer runs.
		var missing []string
		for name, idx := range m.placement {
			if idx == i {
				if _, ok := onNode[name]; !ok {
					missing = append(missing, name)
				}
			}
		}
		sort.Strings(missing)
		for _, name := range missing {
			delete(m.placement, name)
			spec := m.specs[name]
			delete(m.specs, name)
			m.repairReplace(spec, rep)
		}

		// Node → journal: adopt unknown VMs, re-assert diverged specs,
		// release stale copies of VMs placed elsewhere.
		names := make([]string, 0, len(onNode))
		for name := range onNode {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			vs := onNode[name]
			cur, ok := m.placement[name]
			switch {
			case !ok:
				m.placement[name] = i
				m.specs[name] = specFromVMState(vs)
				m.adoptedVMs++
				rep.Adopted++
			case cur == i:
				if spec := m.specs[name]; spec.Size != vs.Size || spec.MinSize != vs.MinSize {
					// The node's allocation is ground truth.
					spec.Size = vs.Size
					spec.MinSize = vs.MinSize
					m.specs[name] = spec
					rep.Reasserted++
				}
			default:
				// Journaled elsewhere: this copy is stale (the VM was
				// re-placed while the journal entry for this node was lost).
				if err := s.Release(name); err == nil {
					m.staleReleases++
					rep.StaleReleased++
				}
			}
		}
	}
}

// resolveRecoveryMigrations settles migrations that were in flight when the
// manager died. The switchover's last step on the data plane is restoring
// the VM on the destination, so the destination's Has answer decides:
//   - destination has the VM → the migration completed; the placement moves
//     there and any stale source copy is released;
//   - destination does not have it → rollback; the VM keeps its journaled
//     (source) placement untouched.
//
// An unreachable destination keeps the journaled view — exactly as Placed()
// does — and the failure detector decides later.
func (m *Manager) resolveRecoveryMigrations(rep *RecoveryReport) {
	if len(m.recoveryMigrations) == 0 {
		return
	}
	names := make([]string, 0, len(m.recoveryMigrations))
	for name := range m.recoveryMigrations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		intent := m.recoveryMigrations[name]
		dstIdx := m.serverIndex(intent.To)
		if dstIdx < 0 || m.health[dstIdx].dead {
			rep.MigrationsRolledBack++
			m.migrationFailures++
			continue
		}
		has, err := m.servers[dstIdx].Has(name)
		if err != nil || !has {
			// Rolled back (or undecidable): the journaled source placement
			// stands.
			rep.MigrationsRolledBack++
			m.migrationFailures++
			continue
		}
		// Completed before the crash: adopt the move.
		if srcIdx := m.serverIndex(intent.From); srcIdx >= 0 && !m.health[srcIdx].dead {
			if stale, err := m.servers[srcIdx].Has(name); err == nil && stale {
				if err := m.servers[srcIdx].Release(name); err == nil {
					m.staleReleases++
					rep.StaleReleased++
				}
			}
		}
		m.placement[name] = dstIdx
		m.migrations++
		rep.MigrationsResolved++
	}
	// Like the other reconciliation repairs, the resolution is settled by
	// the fresh snapshot Recover writes, not by journal events.
	m.recoveryMigrations = nil
}

// repairReplace re-places one VM the journal knows but no node runs, via
// the same path evacuation uses. Counted as a failure-induced preemption:
// the VM did die, just while the manager was down.
func (m *Manager) repairReplace(spec LaunchSpec, rep *RecoveryReport) {
	m.failurePreemptions++
	if _, _, err := m.launch(spec, false); err != nil {
		m.lostVMs++
		rep.Lost++
		return
	}
	m.replacedVMs++
	rep.Replaced++
}

// Journal returns the attached journal (nil when the manager is not
// durable).
func (m *Manager) Journal() *journal.Journal { return m.journal }

// SetRecorder attaches a state-transition recorder (nil detaches). Recover
// attaches a journal-backed recorder automatically; SetRecorder exists for
// tests and custom sinks.
func (m *Manager) SetRecorder(r Recorder) { m.rec = r }

// AttachJournal starts recording this manager's transitions into j,
// snapshotting every snapshotEvery records (≤0 uses the default).
func (m *Manager) AttachJournal(j *journal.Journal, snapshotEvery int) {
	if snapshotEvery <= 0 {
		snapshotEvery = DurabilityConfig{}.withDefaults().SnapshotEvery
	}
	m.journal = j
	m.rec = &durableRecorder{m: m, j: j, every: snapshotEvery}
	if m.epoch > j.Epoch() {
		j.SetEpoch(m.epoch)
	}
}

// WALError returns the journal failure that fail-stopped recording, or nil
// while durability is healthy.
func (m *Manager) WALError() error { return m.walErr }

// Placements returns the current VM → node-name placement map (a copy).
func (m *Manager) Placements() map[string]string {
	out := make(map[string]string, len(m.placement))
	for name, idx := range m.placement {
		out[name] = m.servers[idx].Name()
	}
	return out
}
