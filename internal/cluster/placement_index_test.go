package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"deflation/internal/cascade"
	"deflation/internal/hypervisor"
	"deflation/internal/restypes"
	"deflation/internal/simcg"
	"deflation/internal/substrate"
	"deflation/internal/vm"
)

// The placement index must be a pure accelerator: every policy, fallback,
// and failure path must choose the SAME server the linear scans choose, on
// the same fleet state, every time. These tests drive the indexed and scan
// managers through identical workloads — scripted chaos, full simulations,
// and fuzzed op streams — and require identical placements, identical
// recorded event streams, and identical final state.

// eventRecorder captures the manager's WAL-bound transition stream as
// comparable strings.
type eventRecorder struct{ events []string }

func (r *eventRecorder) Record(e Event) {
	r.events = append(r.events, fmt.Sprintf("%s vm=%s node=%s from=%s pre=%v",
		e.Kind, e.VM, e.Node, e.From, e.Preempted))
}

// indexScanPair is two managers over independently built but identical
// fleets: a's fleet queries through the placement index, b's through the
// reference linear scans.
type indexScanPair struct {
	a, b           *Manager
	crashA, crashB []*crashableNode
	recA, recB     *eventRecorder
}

// newIndexScanPair builds the pair: n servers, every third container-backed
// (mixed substrates exercise the kind-mask pruning), all wrapped crashable.
func newIndexScanPair(t testing.TB, n int, policy PlacementPolicy, seed int64) *indexScanPair {
	build := func() ([]Node, []*crashableNode) {
		nodes := make([]Node, n)
		crash := make([]*crashableNode, n)
		for i := 0; i < n; i++ {
			var sub substrate.Substrate
			name := fmt.Sprintf("s%02d", i)
			cap := restypes.V(16, 65536, 400, 400)
			var err error
			if i%3 == 2 {
				sub, err = simcg.NewHost(simcg.Config{Name: name, Capacity: cap})
			} else {
				sub, err = hypervisor.NewHost(hypervisor.Config{Name: name, Capacity: cap})
			}
			if err != nil {
				t.Fatal(err)
			}
			crash[i] = newCrashableNode(NewLocalController(sub, cascade.AllLevels(), ModeDeflation))
			nodes[i] = crash[i]
		}
		return nodes, crash
	}
	nodesA, crashA := build()
	nodesB, crashB := build()
	a, err := NewManager(nodesA, policy, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewManager(nodesB, policy, seed)
	if err != nil {
		t.Fatal(err)
	}
	if a.pidx == nil {
		t.Fatal("indexed manager built without a placement index")
	}
	b.pidx = nil // the reference: identical manager, linear scans
	p := &indexScanPair{a: a, b: b, crashA: crashA, crashB: crashB,
		recA: &eventRecorder{}, recB: &eventRecorder{}}
	a.SetRecorder(p.recA)
	b.SetRecorder(p.recB)
	return p
}

// launchBoth launches the same spec on both managers and requires identical
// outcomes: same server index, same error-ness, same preemption set.
func (p *indexScanPair) launchBoth(t testing.TB, spec LaunchSpec) {
	t.Helper()
	ia, ra, ea := p.a.Launch(spec)
	ib, rb, eb := p.b.Launch(spec)
	if ia != ib || (ea == nil) != (eb == nil) {
		t.Fatalf("launch %q: index chose %d (err %v), scan chose %d (err %v)",
			spec.Name, ia, ea, ib, eb)
	}
	if !reflect.DeepEqual(ra.Preempted, rb.Preempted) {
		t.Fatalf("launch %q: index preempted %v, scan preempted %v",
			spec.Name, ra.Preempted, rb.Preempted)
	}
}

// verify requires identical placements, stats, and event streams.
func (p *indexScanPair) verify(t testing.TB) {
	t.Helper()
	if !reflect.DeepEqual(p.a.placement, p.b.placement) {
		t.Fatalf("placements diverged:\nindex: %v\nscan:  %v", p.a.placement, p.b.placement)
	}
	sa, sb := p.a.Snapshot(), p.b.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("snapshots diverged:\nindex: %+v\nscan:  %+v", sa, sb)
	}
	if !reflect.DeepEqual(p.recA.events, p.recB.events) {
		la, lb := len(p.recA.events), len(p.recB.events)
		for i := 0; i < la && i < lb; i++ {
			if p.recA.events[i] != p.recB.events[i] {
				t.Fatalf("event streams diverged at %d:\nindex: %s\nscan:  %s",
					i, p.recA.events[i], p.recB.events[i])
			}
		}
		t.Fatalf("event stream lengths diverged: index %d, scan %d", la, lb)
	}
}

// runIndexScanScript drives one randomized chaos workload through the pair:
// mixed-priority launches (including substrate-pinned and preempting ones),
// releases, node crashes/recoveries, and heartbeat rounds.
func runIndexScanScript(t testing.TB, policy PlacementPolicy, seed int64, ops int) {
	const n = 17 // odd, non-power-of-two: exercises tree padding
	p := newIndexScanPair(t, n, policy, seed)
	rng := rand.New(rand.NewSource(seed))
	var live []string
	vmSeq := 0
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 5: // launch
			vmSeq++
			size := restypes.V(float64(1+rng.Intn(8)), float64(1024*(1+rng.Intn(16))),
				float64(10+rng.Intn(50)), float64(10+rng.Intn(50)))
			spec := LaunchSpec{
				Name:    fmt.Sprintf("vm-%d", vmSeq),
				Size:    size,
				MinSize: size.Scale(0.25),
				AppKind: "elastic",
			}
			if rng.Intn(4) == 0 {
				spec.Priority = vm.HighPriority
				spec.MinSize = restypes.Vector{}
				spec.AppKind = "inelastic"
			}
			switch rng.Intn(6) {
			case 0:
				spec.Substrate = "hypervisor"
			case 1:
				spec.Substrate = "container"
			}
			p.launchBoth(t, spec)
			if p.a.Placed(spec.Name) {
				live = append(live, spec.Name)
			}
			p.b.Placed(spec.Name) // keep reconciliation in lockstep
		case k < 7: // release
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			name := live[i]
			live = append(live[:i], live[i+1:]...)
			ea := p.a.Release(name)
			eb := p.b.Release(name)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("release %q: index err %v, scan err %v", name, ea, eb)
			}
		case k < 8: // crash a node
			i := rng.Intn(n)
			p.crashA[i].crash()
			p.crashB[i].crash()
		case k < 9: // recover a node
			i := rng.Intn(n)
			p.crashA[i].recover()
			p.crashB[i].recover()
		default: // heartbeat rounds (3 = past MaxMisses, so deaths land)
			for r := 0; r < 3; r++ {
				ha := p.a.ProbeHealth()
				hb := p.b.ProbeHealth()
				if len(ha) != len(hb) {
					t.Fatalf("probe events diverged: index %d, scan %d", len(ha), len(hb))
				}
			}
			// Evacuations drop VMs from both placements; refresh the pool.
			kept := live[:0]
			for _, name := range live {
				if _, ok := p.a.placement[name]; ok {
					kept = append(kept, name)
				}
			}
			live = kept
		}
	}
	p.verify(t)
}

// TestPlacementIndexScanEquivalence replays randomized chaos workloads —
// launches, preemptions, releases, crashes, evacuations — through an
// indexed manager and a scan manager for every placement policy, and
// requires identical choices, placements, and WAL event streams.
func TestPlacementIndexScanEquivalence(t *testing.T) {
	seeds := 12
	ops := 400
	if testing.Short() {
		seeds, ops = 3, 150
	}
	for _, policy := range []PlacementPolicy{BestFit, FirstFit, TwoChoices, WorstFit} {
		t.Run(policy.String(), func(t *testing.T) {
			for seed := int64(1); seed <= int64(seeds); seed++ {
				runIndexScanScript(t, policy, seed, ops)
			}
		})
	}
}

// TestPlacementIndexFreeOnlyFitnessEquivalence covers the fitness-ablation
// path (scores from free capacity, bounds from the free-direction maxima).
func TestPlacementIndexFreeOnlyFitnessEquivalence(t *testing.T) {
	p := newIndexScanPair(t, 9, BestFit, 7)
	p.a.SetFreeOnlyFitness(true)
	p.b.SetFreeOnlyFitness(true)
	for i := 0; i < 120; i++ {
		size := restypes.V(float64(1+i%6), float64(2048+512*(i%9)), 20, 20)
		p.launchBoth(t, LaunchSpec{
			Name: fmt.Sprintf("vm-%d", i), Size: size, MinSize: size.Scale(0.2),
			AppKind: "elastic",
		})
	}
	p.verify(t)
}

// TestPlacementIndexFullChaosSimEquivalence replays entire chaos
// simulations both ways: node crashes, agent faults, manager crash-restart
// recovery from the WAL, migrations, and HA failovers all run once with the
// index and once with it globally disabled. Every SimResult field —
// placements, preemptions, evictions, goodput, migration and failover
// counts — must match exactly.
func TestPlacementIndexFullChaosSimEquivalence(t *testing.T) {
	configs := map[string]SimConfig{
		"baseline": smallSim(ModeDeflation, 1.6),
		"chaos":    chaosSim(),
	}
	if !testing.Short() {
		mgrChaos := chaosSim()
		mgrChaos.Faults.ManagerCrashMTBF = 5 * time.Minute
		configs["manager-crash"] = mgrChaos

		migChaos := chaosSim()
		migChaos.Reclaim = ReclaimDeflateThenMigrate
		migChaos.Faults.MigrationFailProb = 0.2
		configs["migration"] = migChaos

		configs["ha-failover"] = haChaosSim()

		mixed := smallSim(ModeDeflation, 1.6)
		mixed.ContainerFraction = 0.4
		configs["mixed-substrate"] = mixed

		ff := chaosSim()
		ff.Policy = FirstFit
		configs["first-fit"] = ff

		wf := chaosSim()
		wf.Policy = WorstFit
		configs["worst-fit"] = wf
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			indexed, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			placementIndexEnabled = false
			defer func() { placementIndexEnabled = true }()
			scanned, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if indexed != scanned {
				t.Errorf("index and scan sims diverged:\nindex: %+v\nscan:  %+v", indexed, scanned)
			}
		})
	}
}

// TestPlacementIndexDisabledByDynamicMembership: AddNode/RemoveNode must
// drop the manager to the scan path permanently.
func TestPlacementIndexDisabledByDynamicMembership(t *testing.T) {
	p := newIndexScanPair(t, 4, BestFit, 1)
	if p.a.pidx == nil {
		t.Fatal("index not built for a static watchable fleet")
	}
	if err := p.a.RemoveNode(p.a.servers[3].Name()); err != nil {
		t.Fatal(err)
	}
	if p.a.pidx != nil {
		t.Fatal("index survived RemoveNode")
	}
	h, err := hypervisor.NewHost(hypervisor.Config{Name: "sX", Capacity: restypes.V(16, 65536, 400, 400)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.a.AddNode(NewLocalController(h, cascade.AllLevels(), ModeDeflation), ""); err != nil {
		t.Fatal(err)
	}
	if p.a.pidx != nil {
		t.Fatal("index rebuilt by AddNode")
	}
	// And the manager still places correctly on the scan path.
	idx, _, err := p.a.Launch(LaunchSpec{Name: "after", Size: restypes.V(2, 4096, 20, 20),
		MinSize: restypes.V(1, 1024, 5, 5), AppKind: "elastic"})
	if err != nil || idx < 0 {
		t.Fatalf("post-membership-change launch failed: idx %d err %v", idx, err)
	}
}

// FuzzPlacementIndex feeds fuzzed fleet states and op streams through the
// indexed and scan managers in lockstep: every placement choice and the
// final placement maps must agree.
func FuzzPlacementIndex(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0x80, 0x33, 0x05, 0x77, 0xfe})
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc})
	big := make([]byte, 192)
	r := rand.New(rand.NewSource(3))
	r.Read(big)
	f.Add(big)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 256 {
			data = data[:256]
		}
		n := 2 + int(data[0]%14)
		policy := PlacementPolicy(int(data[1]) % 4)
		p := newIndexScanPair(t, n, policy, int64(data[0])+1)
		var live []string
		vmSeq := 0
		pos := 2
		// next returns 0 once the input is exhausted; the op loop below is
		// bounded by the input length, so a zero tail just runs cheap ops.
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for op := 0; op < len(data) && pos < len(data); op++ {
			switch b := next(); b % 8 {
			case 0, 1, 2, 3: // launch
				vmSeq++
				size := restypes.V(float64(1+next()%12), float64(512*(1+int(next()%32))),
					float64(1+next()%100), float64(1+next()%100))
				spec := LaunchSpec{
					Name:    fmt.Sprintf("vm-%d", vmSeq),
					Size:    size,
					MinSize: size.Scale(float64(next()%100) / 100),
					AppKind: "elastic",
				}
				if next()%3 == 0 {
					spec.Priority = vm.HighPriority
					spec.MinSize = restypes.Vector{}
					spec.AppKind = "inelastic"
				}
				switch next() % 5 {
				case 0:
					spec.Substrate = "hypervisor"
				case 1:
					spec.Substrate = "container"
				}
				p.launchBoth(t, spec)
				if p.a.Placed(spec.Name) {
					live = append(live, spec.Name)
				}
				p.b.Placed(spec.Name)
			case 4: // release
				if len(live) == 0 {
					continue
				}
				i := int(next()) % len(live)
				name := live[i]
				live = append(live[:i], live[i+1:]...)
				p.a.Release(name)
				p.b.Release(name)
			case 5: // crash
				i := int(next()) % n
				p.crashA[i].crash()
				p.crashB[i].crash()
			case 6: // recover
				i := int(next()) % n
				p.crashA[i].recover()
				p.crashB[i].recover()
			case 7: // heartbeat round
				p.a.ProbeHealth()
				p.b.ProbeHealth()
				kept := live[:0]
				for _, name := range live {
					if _, ok := p.a.placement[name]; ok {
						kept = append(kept, name)
					}
				}
				live = kept
			}
		}
		p.verify(t)
	})
}
