// Package perfmodel provides the shared performance-degradation models used
// by the simulated substrates. The paper measures these effects on a real
// testbed; this reproduction encodes them as explicit, documented functions
// so that every mechanism's relative cost — the quantity all the figures
// compare — is preserved:
//
//   - hypervisor CPU overcommitment suffers lock-holder preemption (§3.1),
//   - hypervisor memory overcommitment suffers host swapping (§3.1, §6.1),
//   - guest hot-unplug is clean but coarse-grained (§3.2.2),
//   - application self-deflation trades hit rate or GC overhead for the
//     absence of swapping (§4).
package perfmodel

import (
	"fmt"
	"math"
	"sort"
)

// AmdahlSpeedup returns the speedup of a workload with serial fraction
// serial when run on cores processors, per Amdahl's law. cores may be
// fractional (hypervisor CPU shares give fractional effective cores).
func AmdahlSpeedup(serial float64, cores float64) float64 {
	if cores <= 0 {
		return 0
	}
	if serial < 0 || serial > 1 {
		panic(fmt.Sprintf("perfmodel: serial fraction %g out of [0,1]", serial))
	}
	return 1 / (serial + (1-serial)/cores)
}

// LockHolderPenalty returns the multiplicative throughput penalty (in [0,1],
// 1 = no penalty) that a guest suffers when its vCPUs are multiplexed onto
// fewer physical cores by the hypervisor scheduler. overcommit is the ratio
// vCPUs/effective-cores, ≥ 1.
//
// The model: preempted vCPUs hold spinlocks for a scheduling quantum, so
// lock acquisitions stall with probability growing in the multiplexing
// ratio. Calibrated so that at 4 vCPUs on 1 core (75% CPU deflation,
// overcommit 4×) the penalty is ≈22% — the hypervisor-vs-OS gap the paper
// reports for kernel compile (Fig. 5b).
func LockHolderPenalty(overcommit float64) float64 {
	if overcommit <= 1 {
		return 1
	}
	// Fraction of lock acquisitions that hit a preempted holder rises with
	// (1 - 1/overcommit); each stall wastes ~a quantum of useful work.
	stall := lhpIntensity * (1 - 1/overcommit)
	return 1 / (1 + stall)
}

// lhpIntensity calibrates LockHolderPenalty: 0.38 puts the 4×-overcommit
// penalty at ≈22%, matching the paper's measured hypervisor-vs-OS gap.
const lhpIntensity = 0.38

// SwapModel captures the cost of running with less physical memory than the
// working set, forcing page-ins from a swap device.
type SwapModel struct {
	// MemAccessNS is the cost of an in-memory access (DRAM, ~100ns).
	MemAccessNS float64
	// SwapAccessNS is the cost of a page fault serviced from the swap disk.
	SwapAccessNS float64
	// Locality is the working-set skew θ∈(0,1): larger means accesses
	// concentrate on a hot subset so losing cold memory hurts less.
	Locality float64
}

// DefaultSwapModel models a SATA-SSD-backed swap device: a fault costs about
// 100 µs against a 100 ns DRAM access, with a typical 0.6 skew.
func DefaultSwapModel() SwapModel {
	return SwapModel{MemAccessNS: 100, SwapAccessNS: 100_000, Locality: 0.6}
}

// FaultRate returns the fraction of memory accesses that fault to swap when
// only residentMB of a workingSetMB working set is memory-resident. With
// skewed access (Zipf-like, parameter Locality), keeping the hottest
// resident fraction f captures f^(1-θ) of accesses.
func (m SwapModel) FaultRate(residentMB, workingSetMB float64) float64 {
	if workingSetMB <= 0 || residentMB >= workingSetMB {
		return 0
	}
	if residentMB <= 0 {
		return 1
	}
	f := residentMB / workingSetMB
	hit := math.Pow(f, 1-m.Locality)
	return 1 - hit
}

// ThroughputFactor returns the multiplicative throughput factor (≤1) for a
// memory-bound workload whose accesses fault at the given rate.
func (m SwapModel) ThroughputFactor(faultRate float64) float64 {
	if faultRate <= 0 {
		return 1
	}
	avg := (1-faultRate)*m.MemAccessNS + faultRate*m.SwapAccessNS
	return m.MemAccessNS / avg
}

// GCOverhead returns the fraction of CPU time a tracing garbage collector
// consumes when liveMB of data is live inside a heapMB heap. This is the
// classical GC cost model: collection work is proportional to live data and
// frequency is inversely proportional to heap headroom, so overhead ∝
// live/(heap-live). Returns +Inf when heap ≤ live (the JVM thrashes).
func GCOverhead(liveMB, heapMB float64) float64 {
	if liveMB <= 0 {
		return 0
	}
	if heapMB <= liveMB {
		return math.Inf(1)
	}
	const gcCostFactor = 0.04 // calibrated: 2× headroom → ~4% GC time
	return gcCostFactor * liveMB / (heapMB - liveMB)
}

// ZipfHitRate returns the analytic hit rate of an LRU cache holding
// cacheItems of totalItems objects under Zipf(θ) access, using the standard
// (c/N)^(1-θ) approximation for θ < 1.
func ZipfHitRate(cacheItems, totalItems int, theta float64) float64 {
	if totalItems <= 0 || cacheItems >= totalItems {
		return 1
	}
	if cacheItems <= 0 {
		return 0
	}
	return math.Pow(float64(cacheItems)/float64(totalItems), 1-theta)
}

// UtilityCurve maps a resource-allocation fraction a∈[0,1] (1 = full,
// undeflated allocation) to normalized application performance ∈[0,1].
// These are the application "utility curves" of Figure 1. The curve is
// monotone piecewise-linear between calibration points.
type UtilityCurve struct {
	name string
	xs   []float64 // allocation fractions, ascending, first 0, last 1
	ys   []float64 // normalized performance at xs
}

// NewUtilityCurve builds a curve from (allocation, performance) calibration
// points. Points are sorted by allocation; the curve must start at
// allocation 0 and end at allocation 1, and performance must be
// non-decreasing in allocation.
func NewUtilityCurve(name string, points map[float64]float64) (*UtilityCurve, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("perfmodel: utility curve %q needs ≥2 points", name)
	}
	xs := make([]float64, 0, len(points))
	for x := range points {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	if xs[0] != 0 || xs[len(xs)-1] != 1 {
		return nil, fmt.Errorf("perfmodel: utility curve %q must span allocations [0,1]", name)
	}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = points[x]
		if ys[i] < 0 || ys[i] > 1 {
			return nil, fmt.Errorf("perfmodel: utility curve %q performance %g out of [0,1]", name, ys[i])
		}
		if i > 0 && ys[i] < ys[i-1] {
			return nil, fmt.Errorf("perfmodel: utility curve %q not monotone at allocation %g", name, x)
		}
	}
	return &UtilityCurve{name: name, xs: xs, ys: ys}, nil
}

// MustUtilityCurve is NewUtilityCurve but panics on error; for package-level
// calibration tables.
func MustUtilityCurve(name string, points map[float64]float64) *UtilityCurve {
	c, err := NewUtilityCurve(name, points)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the workload name the curve was calibrated for.
func (c *UtilityCurve) Name() string { return c.name }

// At returns the normalized performance at allocation fraction a, clamped to
// [0,1] and linearly interpolated between calibration points.
func (c *UtilityCurve) At(a float64) float64 {
	if a <= 0 {
		return c.ys[0]
	}
	if a >= 1 {
		return c.ys[len(c.ys)-1]
	}
	i := sort.SearchFloat64s(c.xs, a)
	// c.xs[i-1] < a ≤ c.xs[i] (a is strictly inside (0,1) here).
	x0, x1 := c.xs[i-1], c.xs[i]
	y0, y1 := c.ys[i-1], c.ys[i]
	return y0 + (y1-y0)*(a-x0)/(x1-x0)
}

// AtDeflation returns performance when the allocation has been deflated by
// fraction d (d=0.5 means half the resources reclaimed).
func (c *UtilityCurve) AtDeflation(d float64) float64 { return c.At(1 - d) }

// Calibrated utility curves for the four Figure-1 workloads. Calibration
// points follow the measured shapes in the paper: most workloads lose <30%
// performance at 50% deflation; memcached and SpecJBB have wide headroom
// plateaus; Spark K-means degrades closest to linearly.
var (
	// CurveSpecJBB: SpecJBB 2015, fixed-IR mode — JIT+heap headroom gives a
	// plateau, then throughput falls off as the heap and cores tighten.
	CurveSpecJBB = MustUtilityCurve("SpecJBB", map[float64]float64{
		0: 0, 0.2: 0.35, 0.4: 0.62, 0.5: 0.75, 0.6: 0.85, 0.8: 0.96, 1: 1,
	})
	// CurveKcompile: Linux kernel compile — highly parallel with I/O overlap,
	// so it tolerates deep CPU deflation (70% performance at 25% allocation).
	CurveKcompile = MustUtilityCurve("Kcompile", map[float64]float64{
		0: 0, 0.125: 0.48, 0.25: 0.70, 0.5: 0.82, 0.75: 0.93, 1: 1,
	})
	// CurveMemcached: deflation-aware memcached — flat while the hot set
	// fits, then hit rate erodes.
	CurveMemcached = MustUtilityCurve("Memcached", map[float64]float64{
		0: 0, 0.25: 0.55, 0.5: 0.80, 0.6: 0.92, 0.75: 1, 1: 1,
	})
	// CurveSparkKmeans: Spark K-means — compute-bound BSP stages degrade the
	// closest to proportionally of the four.
	CurveSparkKmeans = MustUtilityCurve("Spark-Kmeans", map[float64]float64{
		0: 0, 0.25: 0.42, 0.5: 0.68, 0.75: 0.87, 1: 1,
	})
)

// Figure1Curves returns the four calibrated workload curves in the order the
// paper plots them.
func Figure1Curves() []*UtilityCurve {
	return []*UtilityCurve{CurveSpecJBB, CurveKcompile, CurveMemcached, CurveSparkKmeans}
}
