package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAmdahlSpeedup(t *testing.T) {
	if got := AmdahlSpeedup(0, 4); math.Abs(got-4) > 1e-12 {
		t.Errorf("fully parallel on 4 cores = %g, want 4", got)
	}
	if got := AmdahlSpeedup(1, 16); math.Abs(got-1) > 1e-12 {
		t.Errorf("fully serial = %g, want 1", got)
	}
	if got := AmdahlSpeedup(0.5, math.Inf(1)); math.Abs(got-2) > 1e-9 {
		t.Errorf("serial 0.5 at infinite cores = %g, want 2", got)
	}
	if got := AmdahlSpeedup(0.1, 0); got != 0 {
		t.Errorf("zero cores = %g, want 0", got)
	}
}

func TestAmdahlPanicsOnBadSerial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("serial=2 did not panic")
		}
	}()
	AmdahlSpeedup(2, 4)
}

func TestLockHolderPenalty(t *testing.T) {
	if got := LockHolderPenalty(1); got != 1 {
		t.Errorf("no overcommit penalty = %g, want 1", got)
	}
	if got := LockHolderPenalty(0.5); got != 1 {
		t.Errorf("undercommit penalty = %g, want 1", got)
	}
	// Calibration: 4 vCPUs on 1 core should cost ≈22% (paper Fig. 5b).
	got := LockHolderPenalty(4)
	if got < 0.75 || got > 0.81 {
		t.Errorf("4x overcommit penalty factor = %g, want ≈0.78 (22%% loss)", got)
	}
	// Monotone: more overcommit, more penalty.
	prev := 1.0
	for oc := 1.0; oc <= 8; oc += 0.5 {
		p := LockHolderPenalty(oc)
		if p > prev+1e-12 {
			t.Errorf("penalty not monotone at overcommit %g: %g > %g", oc, p, prev)
		}
		prev = p
	}
}

func TestSwapFaultRate(t *testing.T) {
	m := DefaultSwapModel()
	if got := m.FaultRate(1000, 1000); got != 0 {
		t.Errorf("fully resident fault rate = %g, want 0", got)
	}
	if got := m.FaultRate(2000, 1000); got != 0 {
		t.Errorf("over-provisioned fault rate = %g, want 0", got)
	}
	if got := m.FaultRate(0, 1000); got != 1 {
		t.Errorf("nothing resident fault rate = %g, want 1", got)
	}
	// Skew: keeping half the working set resident keeps well over half
	// the accesses in memory.
	fr := m.FaultRate(500, 1000)
	if fr <= 0 || fr >= 0.5 {
		t.Errorf("half-resident fault rate = %g, want in (0, 0.5)", fr)
	}
}

func TestSwapThroughputFactor(t *testing.T) {
	m := DefaultSwapModel()
	if got := m.ThroughputFactor(0); got != 1 {
		t.Errorf("no faults factor = %g, want 1", got)
	}
	// Even a small fault rate to a 1000x slower device is devastating.
	f := m.ThroughputFactor(0.01)
	if f > 0.1 {
		t.Errorf("1%% fault rate factor = %g, want < 0.1 (swap cliff)", f)
	}
	// Monotone decreasing in fault rate.
	if m.ThroughputFactor(0.5) >= m.ThroughputFactor(0.1) {
		t.Error("throughput factor not decreasing in fault rate")
	}
}

func TestGCOverhead(t *testing.T) {
	if got := GCOverhead(0, 100); got != 0 {
		t.Errorf("no live data overhead = %g, want 0", got)
	}
	if got := GCOverhead(100, 100); !math.IsInf(got, 1) {
		t.Errorf("heap==live overhead = %g, want +Inf", got)
	}
	if got := GCOverhead(100, 50); !math.IsInf(got, 1) {
		t.Errorf("heap<live overhead = %g, want +Inf", got)
	}
	// Shrinking the heap raises GC overhead.
	if GCOverhead(100, 150) <= GCOverhead(100, 400) {
		t.Error("GC overhead not decreasing in heap size")
	}
	// Calibration: 2x headroom ≈ 4%.
	if got := GCOverhead(100, 200); math.Abs(got-0.04) > 1e-9 {
		t.Errorf("2x headroom overhead = %g, want 0.04", got)
	}
}

func TestZipfHitRate(t *testing.T) {
	if got := ZipfHitRate(100, 100, 0.8); got != 1 {
		t.Errorf("full cache hit rate = %g, want 1", got)
	}
	if got := ZipfHitRate(0, 100, 0.8); got != 0 {
		t.Errorf("empty cache hit rate = %g, want 0", got)
	}
	// Higher skew -> higher hit rate at same cache size.
	if ZipfHitRate(50, 100, 0.9) <= ZipfHitRate(50, 100, 0.1) {
		t.Error("hit rate not increasing in skew")
	}
	// Half the cache captures more than half the accesses for θ>0.
	if got := ZipfHitRate(50, 100, 0.8); got <= 0.5 {
		t.Errorf("hit rate at half cache = %g, want > 0.5", got)
	}
}

func TestUtilityCurveValidation(t *testing.T) {
	if _, err := NewUtilityCurve("x", map[float64]float64{0: 0}); err == nil {
		t.Error("single-point curve accepted")
	}
	if _, err := NewUtilityCurve("x", map[float64]float64{0.1: 0, 1: 1}); err == nil {
		t.Error("curve not starting at 0 accepted")
	}
	if _, err := NewUtilityCurve("x", map[float64]float64{0: 0, 0.9: 1}); err == nil {
		t.Error("curve not ending at 1 accepted")
	}
	if _, err := NewUtilityCurve("x", map[float64]float64{0: 0.5, 0.5: 0.2, 1: 1}); err == nil {
		t.Error("non-monotone curve accepted")
	}
	if _, err := NewUtilityCurve("x", map[float64]float64{0: 0, 1: 1.5}); err == nil {
		t.Error("performance > 1 accepted")
	}
}

func TestUtilityCurveInterpolation(t *testing.T) {
	c := MustUtilityCurve("lin", map[float64]float64{0: 0, 0.5: 0.5, 1: 1})
	for _, a := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := c.At(a); math.Abs(got-a) > 1e-12 {
			t.Errorf("linear curve At(%g) = %g", a, got)
		}
	}
	if got := c.At(-1); got != 0 {
		t.Errorf("At(-1) = %g, want 0 (clamp)", got)
	}
	if got := c.At(2); got != 1 {
		t.Errorf("At(2) = %g, want 1 (clamp)", got)
	}
	if got := c.AtDeflation(0.25); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("AtDeflation(0.25) = %g, want 0.75", got)
	}
}

func TestFigure1CurvesMatchPaperShape(t *testing.T) {
	// The headline claim: at 50% deflation most workloads lose <30%.
	for _, c := range Figure1Curves() {
		p := c.AtDeflation(0.5)
		if c.Name() == "Spark-Kmeans" {
			continue // the one near-linear workload
		}
		if p < 0.70 {
			t.Errorf("%s at 50%% deflation = %g, want ≥0.70 (paper: <30%% loss)", c.Name(), p)
		}
	}
	// Memcached has full headroom to 25% deflation.
	if got := CurveMemcached.AtDeflation(0.25); got != 1 {
		t.Errorf("memcached at 25%% deflation = %g, want 1 (headroom)", got)
	}
	// K-means degrades most steeply of the four at 50%.
	km := CurveSparkKmeans.AtDeflation(0.5)
	for _, c := range []*UtilityCurve{CurveSpecJBB, CurveKcompile, CurveMemcached} {
		if c.AtDeflation(0.5) < km {
			t.Errorf("%s degrades more than K-means at 50%%", c.Name())
		}
	}
}

func TestQuickUtilityCurveMonotone(t *testing.T) {
	for _, c := range Figure1Curves() {
		c := c
		f := func(a, b float64) bool {
			a, b = math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
			if a > b {
				a, b = b, a
			}
			return c.At(a) <= c.At(b)+1e-12
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestQuickSwapFactorBounds(t *testing.T) {
	m := DefaultSwapModel()
	f := func(r float64) bool {
		r = math.Mod(math.Abs(r), 1)
		tf := m.ThroughputFactor(r)
		return tf > 0 && tf <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
