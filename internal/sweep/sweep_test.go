package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deflation/internal/telemetry"
)

// intCells builds n cells where cell i returns i.
func intCells(n int) []Cell[int] {
	cells := make([]Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Run: func(context.Context) (int, error) { return i, nil }}
	}
	return cells
}

// TestOrderingInvariant proves results land by submission index, not
// completion order, across worker counts — including more workers than
// cells and cells that finish in reverse submission order.
func TestOrderingInvariant(t *testing.T) {
	const n = 9
	for _, workers := range []int{0, 1, 2, 3, n, n * 4} {
		cells := make([]Cell[int], n)
		for i := range cells {
			i := i
			cells[i] = Cell[int]{Run: func(context.Context) (int, error) {
				// Later cells finish first: completion order is the reverse
				// of submission order under any worker count > 1.
				time.Sleep(time.Duration(n-i) * time.Millisecond)
				return i, nil
			}}
		}
		out, err := Run(context.Background(), &Engine{Workers: workers}, "order", cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i)
			}
		}
	}
}

// TestPanicBecomesCellError proves a panicking cell fails alone: its error
// carries the cell index and stack, and every other cell still runs and
// returns its value.
func TestPanicBecomesCellError(t *testing.T) {
	const n, bad = 7, 3
	cells := intCells(n)
	cells[bad] = Cell[int]{Run: func(context.Context) (int, error) {
		panic("cell exploded")
	}}
	out, err := Run(context.Background(), &Engine{Workers: 4}, "panics", cells)
	if err == nil {
		t.Fatal("want error from panicking cell")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T does not unwrap to *CellError", err)
	}
	if ce.Index != bad || ce.Label != "panics" {
		t.Fatalf("CellError = {%q %d}, want {panics %d}", ce.Label, ce.Index, bad)
	}
	if !strings.Contains(err.Error(), "cell exploded") {
		t.Fatalf("error %q does not carry the panic value", err)
	}
	for i, v := range out {
		if i == bad {
			continue
		}
		if v != i {
			t.Fatalf("out[%d] = %d, want %d (other cells must survive)", i, v, i)
		}
	}
}

// TestAllCellsAttemptedDespiteErrors proves an early failing cell does not
// stop later cells.
func TestAllCellsAttemptedDespiteErrors(t *testing.T) {
	var ran atomic.Int64
	cells := make([]Cell[int], 6)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Run: func(context.Context) (int, error) {
			ran.Add(1)
			if i == 0 {
				return 0, errors.New("first cell fails")
			}
			return i, nil
		}}
	}
	_, err := Run(context.Background(), &Engine{Workers: 2}, "errs", cells)
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got != 6 {
		t.Fatalf("ran %d cells, want all 6", got)
	}
}

// TestCancellationStopsPromptly proves canceling the context mid-sweep
// keeps undispatched cells from running and returns the context error for
// them, while completed cells keep their results.
func TestCancellationStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	var ran atomic.Int64
	const n = 40
	cells := make([]Cell[int], n)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Run: func(context.Context) (int, error) {
			ran.Add(1)
			started <- struct{}{}
			<-release
			return i, nil
		}}
	}
	const workers = 4
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Run(ctx, &Engine{Workers: workers}, "cancel", cells)
	}()
	// Wait for the pool to fill, then cancel: nothing new may start.
	for i := 0; i < workers; i++ {
		<-started
	}
	cancel()
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	// The workers that were in flight finish; at most one extra dispatch per
	// worker can race the cancellation.
	if got := ran.Load(); got > 2*workers {
		t.Fatalf("%d cells ran after cancel, want ≤ %d", got, 2*workers)
	}
	for i := 0; i < int(ran.Load()) && i < workers; i++ {
		if out[i] != i {
			t.Fatalf("completed cell %d lost its result", i)
		}
	}
}

// TestMemoizationHitReturnsIdenticalResult proves a keyed cell's second
// run returns the stored result — pointer-identical, not recomputed.
func TestMemoizationHitReturnsIdenticalResult(t *testing.T) {
	cache := NewCache()
	e := &Engine{Workers: 2, Cache: cache}
	var computed atomic.Int64
	cell := Cell[*[]float64]{
		Key: Key("test.memo", map[string]int{"cfg": 1}),
		Run: func(context.Context) (*[]float64, error) {
			computed.Add(1)
			v := []float64{1, 2, 3}
			return &v, nil
		},
	}
	first, err := Run(context.Background(), e, "memo", []Cell[*[]float64]{cell})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), e, "memo", []Cell[*[]float64]{cell})
	if err != nil {
		t.Fatal(err)
	}
	if computed.Load() != 1 {
		t.Fatalf("cell computed %d times, want 1", computed.Load())
	}
	if first[0] != second[0] {
		t.Fatal("cache hit returned a different instance than the stored result")
	}
	if entries, hits, misses := cache.Stats(); entries != 1 || hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d entries / %d hits / %d misses, want 1/1/1", entries, hits, misses)
	}
}

// TestMemoizationStoresErrors proves a deterministic failure is memoized
// too: the hit fails again without re-running.
func TestMemoizationStoresErrors(t *testing.T) {
	e := &Engine{Workers: 1, Cache: NewCache()}
	var computed atomic.Int64
	boom := errors.New("deterministic failure")
	cell := Cell[int]{
		Key: "errkey",
		Run: func(context.Context) (int, error) { computed.Add(1); return 0, boom },
	}
	for i := 0; i < 2; i++ {
		_, err := Run(context.Background(), e, "memoerr", []Cell[int]{cell})
		if !errors.Is(err, boom) {
			t.Fatalf("run %d: err = %v, want wrapped %v", i, err, boom)
		}
	}
	if computed.Load() != 1 {
		t.Fatalf("cell computed %d times, want 1", computed.Load())
	}
}

// TestUnkeyedCellsNeverCached proves empty keys bypass the cache.
func TestUnkeyedCellsNeverCached(t *testing.T) {
	e := &Engine{Workers: 1, Cache: NewCache()}
	var computed atomic.Int64
	cell := Cell[int]{Run: func(context.Context) (int, error) {
		computed.Add(1)
		return 7, nil
	}}
	for i := 0; i < 3; i++ {
		if _, err := Run(context.Background(), e, "nokey", []Cell[int]{cell}); err != nil {
			t.Fatal(err)
		}
	}
	if computed.Load() != 3 {
		t.Fatalf("cell computed %d times, want 3 (no memoization without a key)", computed.Load())
	}
}

// TestSerialPathRunsInline proves Workers=1 executes cells in submission
// order on the calling goroutine — the exact legacy serial loop.
func TestSerialPathRunsInline(t *testing.T) {
	var gid func() []byte = func() []byte {
		buf := make([]byte, 64)
		return buf[:runtime.Stack(buf, false)]
	}
	caller := string(gid())
	caller = caller[:strings.IndexByte(caller, '\n')] // "goroutine N [running]:"
	var order []int
	var mu sync.Mutex
	cells := make([]Cell[int], 5)
	for i := range cells {
		i := i
		cells[i] = Cell[int]{Run: func(context.Context) (int, error) {
			g := string(gid())
			g = g[:strings.IndexByte(g, '\n')]
			if g != caller {
				t.Errorf("cell %d ran on %q, want calling goroutine %q", i, g, caller)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return i, nil
		}}
	}
	if _, err := Run(context.Background(), &Engine{Workers: 1}, "serial", cells); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution order %v, want ascending", order)
		}
	}
}

// TestDeterministicAcrossParallelism proves the merged output of a sweep is
// a pure function of its cells: any worker count yields identical results.
func TestDeterministicAcrossParallelism(t *testing.T) {
	build := func() []Cell[float64] {
		cells := make([]Cell[float64], 24)
		for i := range cells {
			i := i
			cells[i] = Cell[float64]{Run: func(context.Context) (float64, error) {
				// A deterministic computation with an index-dependent value.
				v := 1.0
				for k := 0; k < 1000+i; k++ {
					v = v*1.0000001 + float64(i)*1e-9
				}
				return v, nil
			}}
		}
		return cells
	}
	serial, err := Run(context.Background(), &Engine{Workers: 1}, "det", build())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 64} {
		par, err := Run(context.Background(), &Engine{Workers: workers}, "det", build())
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("workers=%d: out[%d] = %v, serial = %v", workers, i, par[i], serial[i])
			}
		}
	}
}

// TestProgressReporting proves the callback sees every completion, ends at
// done == total, and reports monotonically increasing Done.
func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var seen []Progress
	e := &Engine{
		Workers: 3,
		Progress: func(p Progress) {
			mu.Lock()
			seen = append(seen, p)
			mu.Unlock()
		},
	}
	const n = 10
	if _, err := Run(context.Background(), e, "prog", intCells(n)); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("progress callback fired %d times, want %d", len(seen), n)
	}
	for i, p := range seen {
		if p.Done != i+1 || p.Total != n || p.Label != "prog" {
			t.Fatalf("progress[%d] = %+v, want Done=%d Total=%d", i, p, i+1, n)
		}
	}
}

// TestTelemetry proves the engine accrues cell counts, latencies, cache
// hits, and errors into the sink's registry.
func TestTelemetry(t *testing.T) {
	sink := telemetry.NewSink()
	e := &Engine{Workers: 2, Cache: NewCache(), Telemetry: sink}
	cells := intCells(4)
	cells = append(cells, Cell[int]{Key: "k", Run: func(context.Context) (int, error) { return 9, nil }})
	cells = append(cells, Cell[int]{Key: "k", Run: func(context.Context) (int, error) { return 9, nil }})
	cells = append(cells, Cell[int]{Run: func(context.Context) (int, error) { return 0, errors.New("x") }})
	if _, err := Run(context.Background(), &Engine{Workers: 1, Cache: e.Cache, Telemetry: sink}, "tele", cells); err == nil {
		t.Fatal("want the failing cell's error")
	}
	text := sink.Registry.Text()
	for _, want := range []string{
		`deflation_sweep_cells_total{sweep="tele"} 6`,
		`deflation_sweep_cache_hits_total{sweep="tele"} 1`,
		`deflation_sweep_cell_errors_total{sweep="tele"} 1`,
		`deflation_sweep_inflight_cells{sweep="tele"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("registry text missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `deflation_sweep_cell_seconds_count{sweep="tele"} 6`) {
		t.Fatalf("latency histogram did not observe 6 cells:\n%s", text)
	}
}

// TestKey covers the memoization key helper: deterministic, namespace- and
// config-sensitive, and empty for unmarshalable configs.
func TestKey(t *testing.T) {
	type cfg struct{ A, B int }
	k1 := Key("ns", cfg{1, 2})
	if k1 != Key("ns", cfg{1, 2}) {
		t.Fatal("equal configs produced different keys")
	}
	if k1 == Key("ns", cfg{1, 3}) {
		t.Fatal("different configs collided")
	}
	if k1 == Key("other", cfg{1, 2}) {
		t.Fatal("different namespaces collided")
	}
	if !strings.HasPrefix(k1, "ns:") {
		t.Fatalf("key %q does not carry its namespace", k1)
	}
	if Key("ns", func() {}) != "" {
		t.Fatal("unmarshalable config must yield the never-memoize key")
	}
}

// TestEmptySweep and nil-engine behavior.
func TestEmptySweep(t *testing.T) {
	out, err := Run(context.Background(), nil, "empty", []Cell[int](nil))
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
	out2, err := Run(context.Background(), nil, "nilengine", intCells(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out2 {
		if v != i {
			t.Fatalf("nil engine: out[%d] = %d", i, v)
		}
	}
}

// TestErrorJoinListsEveryFailure proves the sweep error names each failing
// cell in cell order.
func TestErrorJoinListsEveryFailure(t *testing.T) {
	cells := intCells(5)
	for _, i := range []int{1, 3} {
		i := i
		cells[i] = Cell[int]{Run: func(context.Context) (int, error) {
			return 0, fmt.Errorf("cell-%d-failed", i)
		}}
	}
	_, err := Run(context.Background(), &Engine{Workers: 2}, "join", cells)
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	first := strings.Index(msg, "cell-1-failed")
	second := strings.Index(msg, "cell-3-failed")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("joined error %q must list failures in cell order", msg)
	}
}

// TestCancelBeforeStart proves an already-canceled context fails every cell
// without running any.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	cells := make([]Cell[int], 4)
	for i := range cells {
		cells[i] = Cell[int]{Run: func(context.Context) (int, error) {
			ran.Add(1)
			return 0, nil
		}}
	}
	for _, workers := range []int{1, 3} {
		_, err := Run(ctx, &Engine{Workers: workers}, "precancel", cells)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	// The parallel path may dispatch a cell that races the canceled-context
	// select; the serial path never runs any.
	if got := ran.Load(); got > 4 {
		t.Fatalf("%d cells ran under a canceled context", got)
	}
}
