package sweep

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
)

// Cache memoizes cell results by key, safe for concurrent sweeps. Both
// values and errors are stored: a cell that failed deterministically fails
// again on a hit without re-running. The cache holds results for the
// process lifetime — sweep cells are figure results, small relative to the
// simulations that produce them.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	value any
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]cacheEntry)}
}

// lookup returns the stored result for key.
func (c *Cache) lookup(key string) (any, error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e.value, e.err, ok
}

// store records a computed result. First store wins: concurrent cells with
// the same key compute identical results (cells are deterministic), so
// keeping the existing entry preserves result identity for later hits.
func (c *Cache) store(key string, value any, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		c.entries[key] = cacheEntry{value: value, err: err}
	}
}

// Stats reports lookups since creation.
func (c *Cache) Stats() (entries int, hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}

// Key builds a memoization key from a namespace and a configuration value.
// The config is serialized with encoding/json (deterministic: struct fields
// in declaration order, map keys sorted) and hashed; the namespace keeps
// identically-shaped configs of different cell types from colliding — it
// must also pin the result type, since a cache hit asserts the stored
// value back to the requesting sweep's type. Returns "" (never memoize) if
// the config does not marshal.
func Key(namespace string, config any) string {
	raw, err := json.Marshal(config)
	if err != nil {
		return ""
	}
	h := fnv.New64a()
	h.Write([]byte(namespace))
	h.Write([]byte{0})
	h.Write(raw)
	return fmt.Sprintf("%s:%016x", namespace, h.Sum64())
}
