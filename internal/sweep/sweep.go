// Package sweep is the parallel experiment-sweep engine: it fans a grid of
// independent simulation cells out across a bounded worker pool and merges
// the results deterministically, so that every figure sweep in
// internal/experiments runs N× faster on an N-core machine while producing
// bit-for-bit the output of the legacy serial loops.
//
// Determinism is the design center. Results never depend on completion
// order: each cell is submitted with an index and its result lands in a
// pre-sized slice at that index, so the merged output of Run is a pure
// function of the cells themselves. Every cell owns its entire state (the
// cluster simulations each build their own hosts, RNGs, and simclock), so
// running cells concurrently changes wall-clock time and nothing else —
// a property the experiments package proves with parallel-vs-serial
// determinism tests and a race-detector run.
//
// The engine also hardens sweeps: a panicking cell is captured and
// converted into that cell's error (one bad cell fails loudly without
// tearing down the other workers), context cancellation stops dispatch
// promptly, and optional memoization short-circuits cells whose key was
// already computed (sweeps across figures share identical SimConfig cells,
// e.g. the chaos experiment's zero-fault row is exactly a Fig. 8c cell).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"deflation/internal/telemetry"
)

// Cell is one unit of sweep work producing a T.
type Cell[T any] struct {
	// Key, when non-empty, memoizes the cell's result in the engine's
	// Cache: a later cell (in this sweep or any other sweep sharing the
	// cache) with the same key returns the stored result without running.
	// Cells with side effects (metering, telemetry sinks) must leave Key
	// empty. Keys must be collision-free across *different* computations;
	// hash the full config (see Key helper).
	Key string
	// Run computes the cell. It must be self-contained: no state shared
	// with other cells except immutable inputs. The context is the sweep's;
	// long-running cells may honor its cancellation.
	Run func(ctx context.Context) (T, error)
}

// Progress is a point-in-time view of a running sweep, delivered to the
// engine's Progress callback after every cell completion.
type Progress struct {
	Label     string        // the sweep's label (figure name)
	Done      int           // cells finished (including cache hits)
	Total     int           // cells submitted
	CacheHits int           // cells satisfied from the cache
	Errors    int           // cells that returned an error (or panicked)
	Elapsed   time.Duration // wall-clock since Run started
	// ETA estimates the remaining wall-clock time from the mean cell
	// latency so far and the configured worker count (zero until the
	// first cell completes).
	ETA time.Duration
}

// Engine runs sweeps. The zero value runs with GOMAXPROCS workers, no
// memoization, no telemetry, and no progress reporting; an Engine is
// immutable during Run and may be reused across sweeps.
type Engine struct {
	// Workers bounds cell concurrency. 0 (or negative) means
	// runtime.GOMAXPROCS(0). 1 reproduces the legacy serial path exactly:
	// cells run inline on the calling goroutine in submission order.
	Workers int
	// Cache, when non-nil, memoizes keyed cells (see Cell.Key).
	Cache *Cache
	// Telemetry, when non-nil, accrues sweep counters (cells run, cache
	// hits, errors) and a per-cell latency histogram into the sink's
	// registry, labeled by sweep.
	Telemetry *telemetry.Sink
	// Progress, when non-nil, is called after every cell completion. Calls
	// are serialized by the engine but may come from worker goroutines;
	// the callback must not block for long.
	Progress func(Progress)
}

// workers resolves the effective worker count for n cells.
func (e *Engine) workers(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CellError wraps the failure of one cell with its position in the sweep.
type CellError struct {
	Label string // sweep label
	Index int    // cell index within the sweep
	Err   error
}

// Error implements error.
func (e *CellError) Error() string {
	return fmt.Sprintf("sweep %s: cell %d: %v", e.Label, e.Index, e.Err)
}

// Unwrap exposes the underlying cell failure.
func (e *CellError) Unwrap() error { return e.Err }

// sweepMetrics are the telemetry instruments of one labeled sweep.
type sweepMetrics struct {
	cells, hits, errs *telemetry.Counter
	latency           *telemetry.Histogram
	inflight          *telemetry.Gauge
}

func (e *Engine) metrics(label string) *sweepMetrics {
	if e.Telemetry == nil {
		return nil
	}
	r := e.Telemetry.Registry
	l := telemetry.Labels{"sweep": label}
	return &sweepMetrics{
		cells: r.Counter("deflation_sweep_cells_total",
			"sweep cells executed (cache hits excluded)", l),
		hits: r.Counter("deflation_sweep_cache_hits_total",
			"sweep cells satisfied from the memoization cache", l),
		errs: r.Counter("deflation_sweep_cell_errors_total",
			"sweep cells that returned an error or panicked", l),
		latency: r.Histogram("deflation_sweep_cell_seconds",
			"per-cell wall-clock latency",
			telemetry.ExpBuckets(0.001, 4, 12), l),
		inflight: r.Gauge("deflation_sweep_inflight_cells",
			"cells currently executing", l),
	}
}

// Run executes cells and returns their results in submission order:
// out[i] is cells[i]'s value. All cells are attempted (an error in one
// does not stop the others); the returned error is nil only if every cell
// succeeded, and otherwise wraps each failing cell's error as a *CellError
// in cell order. If ctx is canceled mid-sweep, cells not yet started fail
// with ctx's error and Run returns promptly after in-flight cells finish.
func Run[T any](ctx context.Context, e *Engine, label string, cells []Cell[T]) ([]T, error) {
	if e == nil {
		e = &Engine{}
	}
	out := make([]T, len(cells))
	if len(cells) == 0 {
		return out, nil
	}
	errs := make([]error, len(cells))
	m := e.metrics(label)

	start := time.Now()
	var mu sync.Mutex // guards the progress counters below
	done, hits, errCount := 0, 0, 0
	workers := e.workers(len(cells))
	finish := func(i int, hit bool) {
		mu.Lock()
		done++
		if hit {
			hits++
		}
		if errs[i] != nil {
			errCount++
		}
		p := Progress{
			Label: label, Done: done, Total: len(cells),
			CacheHits: hits, Errors: errCount, Elapsed: time.Since(start),
		}
		if done > 0 && done < len(cells) {
			perCell := p.Elapsed / time.Duration(done)
			remaining := len(cells) - done
			// Remaining cells drain through the worker pool in waves.
			waves := (remaining + workers - 1) / workers
			p.ETA = perCell * time.Duration(waves)
		}
		cb := e.Progress
		if cb != nil {
			cb(p)
		}
		mu.Unlock()
	}

	runCell := func(i int) {
		c := cells[i]
		if c.Key != "" && e.Cache != nil {
			if v, err, ok := e.Cache.lookup(c.Key); ok {
				if tv, tok := v.(T); tok {
					out[i] = tv
				}
				errs[i] = err
				if m != nil {
					m.hits.Inc()
					if err != nil {
						m.errs.Inc()
					}
				}
				finish(i, true)
				return
			}
		}
		if m != nil {
			m.inflight.Add(1)
		}
		cellStart := time.Now()
		v, err := protect(ctx, label, i, c.Run)
		if m != nil {
			m.inflight.Add(-1)
			m.cells.Inc()
			m.latency.Observe(time.Since(cellStart).Seconds())
			if err != nil {
				m.errs.Inc()
			}
		}
		// The value is kept even alongside an error, mirroring the legacy
		// serial loops, which returned partially-built results on failure.
		out[i] = v
		errs[i] = err
		if c.Key != "" && e.Cache != nil {
			e.Cache.store(c.Key, v, err)
		}
		finish(i, false)
	}

	if workers == 1 {
		// The legacy serial path: submission order, calling goroutine.
		for i := range cells {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				finish(i, false)
				continue
			}
			runCell(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runCell(i)
				}
			}()
		}
	dispatch:
		for i := range cells {
			select {
			case idx <- i:
			case <-ctx.Done():
				// Cells not yet dispatched fail with the context's error.
				for j := i; j < len(cells); j++ {
					errs[j] = ctx.Err()
					finish(j, false)
				}
				break dispatch
			}
		}
		close(idx)
		wg.Wait()
	}

	var joined error
	for i, err := range errs {
		if err == nil {
			continue
		}
		var ce *CellError
		if e, ok := err.(*CellError); ok {
			ce = e
		} else {
			ce = &CellError{Label: label, Index: i, Err: err}
		}
		if joined == nil {
			joined = ce
		} else {
			joined = fmt.Errorf("%w; %w", joined, ce)
		}
	}
	return out, joined
}

// protect runs one cell body, converting a panic into that cell's error.
func protect[T any](ctx context.Context, label string, i int, fn func(context.Context) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellError{Label: label, Index: i,
				Err: fmt.Errorf("panic: %v\n%s", r, debug.Stack())}
		}
	}()
	return fn(ctx)
}
