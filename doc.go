// Package deflation is a from-scratch Go reproduction of "Resource
// Deflation: A New Approach For Transient Resource Reclamation" (Sharma,
// Ali-Eldin, Shenoy — EuroSys 2019).
//
// Deflatable VMs shrink (and re-expand) under resource pressure instead of
// being preempted. The repository implements the paper's multi-level
// cascade deflation (application → guest OS → hypervisor), the application
// deflation policies (memcached LRU resize, JVM heap resize, the Spark
// running-time-minimizing policy of Eq. 1–3), and deflation-aware cluster
// management (cosine-fitness bin packing over free+deflatable availability,
// proportional deflation, reinflation, preemption only below minimum
// sizes), together with simulated substrates for everything the paper ran
// on real hardware: a KVM-like hypervisor, guest OS hotplug, a mini-Spark
// engine with lineage recomputation, and a trace-driven 100-node cluster
// simulator.
//
// The package tree lives under internal/; the public surface is the set of
// command-line tools under cmd/ and the runnable examples under examples/.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results of every figure.
package deflation
