module deflation

go 1.22
