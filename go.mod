module deflation

go 1.24
